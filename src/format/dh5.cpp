#include "format/dh5.hpp"

#include <cstring>

#include "format/crc32.hpp"

namespace dmr::format {

namespace {

constexpr char kFileMagic[4] = {'D', 'H', '5', 'F'};
constexpr char kEndMagic[4] = {'D', 'H', '5', 'E'};
constexpr char kDsetMagic[4] = {'D', 'S', 'E', 'T'};
constexpr std::uint32_t kVersion = 1;

// Little-endian scalar I/O helpers (the library targets little-endian
// hosts; a big-endian port would byte-swap here).
template <typename T>
bool write_scalar(std::FILE* f, T v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool read_scalar(std::FILE* f, T& v) {
  return std::fread(&v, sizeof(T), 1, f) == 1;
}

bool write_bytes(std::FILE* f, const void* p, std::size_t n) {
  return n == 0 || std::fwrite(p, 1, n, f) == n;
}

bool read_bytes(std::FILE* f, void* p, std::size_t n) {
  return n == 0 || std::fread(p, 1, n, f) == n;
}

}  // namespace

// ------------------------------------------------------------- writer

Dh5Writer::~Dh5Writer() {
  if (file_) std::fclose(file_);
}

Dh5Writer::Dh5Writer(Dh5Writer&& o) noexcept
    : file_(o.file_),
      path_(std::move(o.path_)),
      offsets_(std::move(o.offsets_)),
      raw_bytes_(o.raw_bytes_),
      stored_bytes_(o.stored_bytes_) {
  o.file_ = nullptr;
}

Dh5Writer& Dh5Writer::operator=(Dh5Writer&& o) noexcept {
  if (this != &o) {
    if (file_) std::fclose(file_);
    file_ = o.file_;
    path_ = std::move(o.path_);
    offsets_ = std::move(o.offsets_);
    raw_bytes_ = o.raw_bytes_;
    stored_bytes_ = o.stored_bytes_;
    o.file_ = nullptr;
  }
  return *this;
}

Result<Dh5Writer> Dh5Writer::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return io_error("cannot create " + path);
  Dh5Writer w;
  w.file_ = f;
  w.path_ = path;
  if (!write_bytes(f, kFileMagic, 4) || !write_scalar(f, kVersion) ||
      !write_scalar<std::uint64_t>(f, 0)) {
    return io_error("cannot write superblock of " + path);
  }
  return w;
}

Status Dh5Writer::add_dataset(const DatasetInfo& info,
                              std::span<const std::byte> raw,
                              const Pipeline& pipeline) {
  EncodedBuffer enc = pipeline.encode(raw);
  return add_encoded(info, enc, raw.size());
}

Status Dh5Writer::add_encoded(const DatasetInfo& info,
                              const EncodedBuffer& encoded,
                              std::uint64_t raw_size) {
  if (!file_) return failed_precondition("writer is closed");
  if (info.name.size() > 0xFFFF) return invalid_argument("name too long");
  if (info.layout.dims.size() > 0xFF) return invalid_argument("too many dims");
  if (encoded.codecs.size() > 0xFF) return invalid_argument("too many codecs");

  const long pos = std::ftell(file_);
  if (pos < 0) return io_error("ftell failed");
  offsets_.push_back(static_cast<std::uint64_t>(pos));

  const std::uint32_t crc =
      crc32(std::span<const std::byte>(encoded.data.data(),
                                       encoded.data.size()));
  bool ok = write_bytes(file_, kDsetMagic, 4) &&
            write_scalar<std::uint16_t>(
                file_, static_cast<std::uint16_t>(info.name.size())) &&
            write_bytes(file_, info.name.data(), info.name.size()) &&
            write_scalar<std::int64_t>(file_, info.iteration) &&
            write_scalar<std::int32_t>(file_, info.source) &&
            write_scalar<std::uint8_t>(
                file_, static_cast<std::uint8_t>(info.layout.type)) &&
            write_scalar<std::uint8_t>(
                file_, static_cast<std::uint8_t>(info.layout.dims.size()));
  for (std::uint64_t d : info.layout.dims) ok = ok && write_scalar(file_, d);
  ok = ok && write_scalar<std::uint8_t>(
                 file_, static_cast<std::uint8_t>(encoded.codecs.size()));
  for (CodecId c : encoded.codecs) {
    ok = ok && write_scalar<std::uint8_t>(file_,
                                          static_cast<std::uint8_t>(c));
  }
  for (std::uint64_t s : encoded.sizes_before) {
    ok = ok && write_scalar(file_, s);
  }
  ok = ok && write_scalar<std::uint64_t>(file_, raw_size) &&
       write_scalar<std::uint64_t>(file_, encoded.data.size()) &&
       write_scalar<std::uint32_t>(file_, crc) &&
       write_bytes(file_, encoded.data.data(), encoded.data.size());
  if (!ok) return io_error("short write in " + path_);

  raw_bytes_ += raw_size;
  stored_bytes_ += encoded.data.size();
  return Status::ok();
}

Status Dh5Writer::finalize() {
  if (!file_) return failed_precondition("writer is closed");
  const long index_pos = std::ftell(file_);
  if (index_pos < 0) return io_error("ftell failed");
  bool ok = write_scalar<std::uint64_t>(file_, offsets_.size());
  for (std::uint64_t off : offsets_) ok = ok && write_scalar(file_, off);
  ok = ok && write_scalar<std::uint64_t>(
                 file_, static_cast<std::uint64_t>(index_pos)) &&
       write_scalar<std::uint64_t>(file_, offsets_.size()) &&
       write_bytes(file_, kEndMagic, 4);
  if (!ok) return io_error("cannot write index of " + path_);
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return io_error("close failed for " + path_);
  }
  file_ = nullptr;
  return Status::ok();
}

// ------------------------------------------------------------- reader

Dh5Reader::~Dh5Reader() {
  if (file_) std::fclose(file_);
}

Dh5Reader::Dh5Reader(Dh5Reader&& o) noexcept
    : file_(o.file_), entries_(std::move(o.entries_)) {
  o.file_ = nullptr;
}

Dh5Reader& Dh5Reader::operator=(Dh5Reader&& o) noexcept {
  if (this != &o) {
    if (file_) std::fclose(file_);
    file_ = o.file_;
    entries_ = std::move(o.entries_);
    o.file_ = nullptr;
  }
  return *this;
}

Result<Dh5Reader> Dh5Reader::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return io_error("cannot open " + path);
  Dh5Reader r;
  r.file_ = f;

  char magic[4];
  std::uint32_t version;
  std::uint64_t reserved;
  if (!read_bytes(f, magic, 4) || std::memcmp(magic, kFileMagic, 4) != 0) {
    return corrupt_data(path + ": bad superblock magic");
  }
  if (!read_scalar(f, version) || version != kVersion) {
    return corrupt_data(path + ": unsupported version");
  }
  if (!read_scalar(f, reserved)) return corrupt_data(path + ": truncated");

  // Footer: last 20 bytes.
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return corrupt_data(path + ": seek failed");
  }
  const long end = std::ftell(f);
  if (end < 20) return corrupt_data(path + ": too short for a footer");
  const std::uint64_t file_size = static_cast<std::uint64_t>(end);
  if (std::fseek(f, -20, SEEK_END) != 0) {
    return corrupt_data(path + ": no footer");
  }
  std::uint64_t index_offset = 0, count = 0;
  char end_magic[4];
  if (!read_scalar(f, index_offset) || !read_scalar(f, count) ||
      !read_bytes(f, end_magic, 4) ||
      std::memcmp(end_magic, kEndMagic, 4) != 0) {
    return corrupt_data(path + ": bad footer (file not finalized?)");
  }
  // Each indexed dataset needs at least an 8-byte offset entry; a count
  // beyond that is corruption (and would drive a huge allocation).
  if (count > file_size / 8 || index_offset >= file_size) {
    return corrupt_data(path + ": implausible index");
  }

  // Index.
  if (std::fseek(f, static_cast<long>(index_offset), SEEK_SET) != 0) {
    return corrupt_data(path + ": bad index offset");
  }
  std::uint64_t index_count = 0;
  if (!read_scalar(f, index_count) || index_count != count) {
    return corrupt_data(path + ": index/footer count mismatch");
  }
  std::vector<std::uint64_t> offsets(count);
  for (auto& off : offsets) {
    if (!read_scalar(f, off)) return corrupt_data(path + ": short index");
  }

  // Dataset headers.
  r.entries_.reserve(count);
  for (std::uint64_t off : offsets) {
    if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0) {
      return corrupt_data(path + ": bad dataset offset");
    }
    char dmagic[4];
    if (!read_bytes(f, dmagic, 4) ||
        std::memcmp(dmagic, kDsetMagic, 4) != 0) {
      return corrupt_data(path + ": bad dataset magic");
    }
    DatasetEntry e;
    std::uint16_t name_len;
    if (!read_scalar(f, name_len)) return corrupt_data(path + ": truncated");
    e.info.name.resize(name_len);
    if (!read_bytes(f, e.info.name.data(), name_len)) {
      return corrupt_data(path + ": truncated name");
    }
    std::uint8_t dtype, ndims, ncodecs;
    if (!read_scalar(f, e.info.iteration) ||
        !read_scalar(f, e.info.source) || !read_scalar(f, dtype) ||
        !read_scalar(f, ndims)) {
      return corrupt_data(path + ": truncated header");
    }
    if (dtype > static_cast<std::uint8_t>(DataType::kFloat64)) {
      return corrupt_data(path + ": unknown dtype");
    }
    e.info.layout.type = static_cast<DataType>(dtype);
    e.info.layout.dims.resize(ndims);
    for (auto& d : e.info.layout.dims) {
      if (!read_scalar(f, d)) return corrupt_data(path + ": truncated dims");
    }
    if (!read_scalar(f, ncodecs)) return corrupt_data(path + ": truncated");
    e.codecs.resize(ncodecs);
    for (auto& c : e.codecs) {
      std::uint8_t id;
      if (!read_scalar(f, id)) return corrupt_data(path + ": truncated");
      c = static_cast<CodecId>(id);
    }
    e.sizes_before.resize(ncodecs);
    for (auto& s : e.sizes_before) {
      if (!read_scalar(f, s)) return corrupt_data(path + ": truncated");
    }
    if (!read_scalar(f, e.raw_size) || !read_scalar(f, e.stored_size) ||
        !read_scalar(f, e.crc)) {
      return corrupt_data(path + ": truncated sizes");
    }
    const long payload = std::ftell(f);
    if (payload < 0) return io_error("ftell failed");
    e.payload_offset = static_cast<std::uint64_t>(payload);
    // Size sanity: a corrupted header must not drive the reader into
    // huge allocations. Payload must fit in the file, and the decoded
    // sizes cannot exceed what the codec stages could possibly expand
    // to (LZ77's worst-case expansion is ~44x per stage; 512x total is
    // a generous cap).
    const std::uint64_t max_decoded = e.stored_size * 512 + 4096;
    if (e.payload_offset + e.stored_size > file_size ||
        e.raw_size > max_decoded) {
      return corrupt_data(path + ": implausible dataset sizes");
    }
    for (std::uint64_t s : e.sizes_before) {
      if (s > max_decoded) {
        return corrupt_data(path + ": implausible stage size");
      }
    }
    r.entries_.push_back(std::move(e));
  }
  return r;
}

Result<std::vector<std::byte>> Dh5Reader::read(std::size_t index) {
  if (index >= entries_.size()) return invalid_argument("bad dataset index");
  const DatasetEntry& e = entries_[index];
  if (std::fseek(file_, static_cast<long>(e.payload_offset), SEEK_SET) != 0) {
    return io_error("seek failed");
  }
  std::vector<std::byte> stored(e.stored_size);
  if (!read_bytes(file_, stored.data(), stored.size())) {
    return corrupt_data("short payload read");
  }
  if (crc32(stored) != e.crc) {
    return corrupt_data("crc mismatch in dataset '" + e.info.name + "'");
  }
  if (e.codecs.empty()) {
    if (stored.size() != e.raw_size) {
      return corrupt_data("raw size mismatch");
    }
    return stored;
  }
  return Pipeline::decode(stored, e.codecs, e.sizes_before);
}

std::optional<std::size_t> Dh5Reader::find(const std::string& name,
                                           std::int64_t iteration,
                                           std::int32_t source) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& info = entries_[i].info;
    if (info.name == name && info.iteration == iteration &&
        info.source == source) {
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace dmr::format


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/dh5_tool.cpp" "examples/CMakeFiles/dh5_tool.dir/dh5_tool.cpp.o" "gcc" "examples/CMakeFiles/dh5_tool.dir/dh5_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/postproc/CMakeFiles/dmr_postproc.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/dmr_format.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

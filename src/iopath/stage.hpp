// The staged write-pipeline vocabulary (TASIO-style request pipeline).
//
// A write is a WriteRequest flowing through an ordered composition of
// typed Stages:
//
//   Ingest     the handoff that the application perceives as "the
//              write" — a memcpy into node-local shared memory (or the
//              slower FUSE detour of §V-B);
//   Transform  optional data reduction (gzip / 16-bit precision, §IV-D);
//   Schedule   when the writer may touch the file system — §IV-D local
//              slots and/or §VI coordination tokens;
//   Transport  bulk movement off the node (dedicated-*node* staging:
//              NIC, fabric, staging NIC);
//   Storage    the file-system protocol (create, striped writes, close —
//              or a fused two-phase collective write).
//
// A strategy is a *composition* of stages, not a special case: e.g.
// file-per-process = Transform→Storage on every compute core, Damaris =
// Ingest on the compute core plus Transform→Schedule→Storage on the
// dedicated core. Stage kinds are ordered; a request must traverse them
// monotonically (check::StageOrderChecker enforces this).
//
// Thread-safety: Stage implementations belong to their pipeline and
// are invoked by its single driving thread; shared resources a stage
// touches (FS servers, the scheduler) carry their own synchronization
// or live inside one DES engine.
#pragma once

#include "common/status.hpp"
#include "common/units.hpp"
#include "des/task.hpp"

namespace dmr::cluster {
class Node;
}

namespace dmr::des {
class ServiceQueue;
}

namespace dmr::iopath {

/// Canonical stage order (the pipeline invariant checked by
/// check::StageOrderChecker): a request visits kinds in non-decreasing
/// enum order.
enum class StageKind : int {
  kIngest = 0,
  kTransform = 1,
  kSchedule = 2,
  kTransport = 3,
  kStorage = 4,
};

inline constexpr int kNumStageKinds = 5;

inline constexpr int stage_index(StageKind k) { return static_cast<int>(k); }

const char* stage_name(StageKind k);

/// One write travelling through a pipeline. The request carries its own
/// context (origin node, issuing core) so stage instances can be shared
/// by every rank/writer of an experiment.
struct WriteRequest {
  /// Issuing rank (client pipelines) or writer id (writer pipelines).
  int source = 0;
  /// Global core index that issues storage operations.
  int core = 0;
  /// Write-phase index (0-based).
  int phase = 0;

  /// Payload size entering the pipeline.
  Bytes raw_bytes = 0;
  /// Current payload size; a Transform stage may shrink it.
  Bytes bytes = 0;

  /// Origin node (Ingest/Transport stages).
  cluster::Node* node = nullptr;
  /// Staging node a Transport stage ships to (dedicated-nodes mode).
  cluster::Node* staging = nullptr;

  /// Server-directed placement for the Storage stage (facility placement
  /// ladder): confine this request's file to the data-server slice
  /// [place_first_server, +place_server_span). Negative first server
  /// keeps default hash placement.
  int place_first_server = -1;
  int place_server_span = 0;
  /// Staging-tier burst buffer (facility ladder tier 2): when set, the
  /// Storage stage completes once this queue absorbed the payload and
  /// the real file-system writes drain in the background.
  des::ServiceQueue* staging_tier = nullptr;

  /// Per-stage-kind time spent by *this* request, filled by the
  /// pipeline runner.
  SimTime stage_seconds[kNumStageKinds] = {};

  /// Outcome of the request: stages that can fail (Storage under fault
  /// injection) record their final status here; untouched means OK.
  Status status = Status::ok();
  /// Storage retries this request consumed (bounded-retry policy).
  int retries = 0;

  SimTime seconds(StageKind k) const { return stage_seconds[stage_index(k)]; }
};

/// One composable pipeline stage. Stages are shared across requests and
/// must keep per-request state inside the WriteRequest.
class Stage {
 public:
  virtual ~Stage() = default;

  virtual StageKind kind() const = 0;

  /// Performs the stage's simulated work on `req` (may complete without
  /// suspending — e.g. an inactive transform).
  virtual des::Task<void> run(WriteRequest& req) = 0;

  /// Epilogue invoked after every downstream stage finished, in reverse
  /// composition order (e.g. a Schedule stage releasing its token once
  /// the Storage stage is done).
  virtual void complete(WriteRequest& req) { (void)req; }
};

/// Observation hook for per-stage events, in the style of
/// shm::ShmObserver: iopath owns the interface, checkers (see
/// src/check/pipeline_checker.hpp) implement it, and the dependency
/// never points back.
class PipelineObserver {
 public:
  virtual ~PipelineObserver() = default;

  virtual void on_request_begin(const WriteRequest& req) { (void)req; }
  /// Fires after a stage's run() finished. `bytes_in`/`bytes_out` are
  /// the request's payload size before and after the stage.
  virtual void on_stage_end(StageKind kind, const WriteRequest& req,
                            SimTime seconds, Bytes bytes_in, Bytes bytes_out) {
    (void)kind, (void)req, (void)seconds, (void)bytes_in, (void)bytes_out;
  }
  virtual void on_request_end(const WriteRequest& req) { (void)req; }
};

}  // namespace dmr::iopath

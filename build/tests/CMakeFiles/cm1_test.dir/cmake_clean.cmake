file(REMOVE_RECURSE
  "CMakeFiles/cm1_test.dir/cm1_test.cpp.o"
  "CMakeFiles/cm1_test.dir/cm1_test.cpp.o.d"
  "cm1_test"
  "cm1_test.pdb"
  "cm1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

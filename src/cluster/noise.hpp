// Variability injection (paper §II-A).
//
// NoiseModel draws multiplicative perturbations for compute phases (OS
// noise, cause 3) and storage operations (cross-application interference,
// cause 4). Causes 1 and 2 — intra-node and network contention — emerge
// from the resource models themselves and need no injection.
#pragma once

#include "cluster/specs.hpp"
#include "common/rng.hpp"

namespace dmr::cluster {

class NoiseModel {
 public:
  NoiseModel(const NoiseSpec& spec, Rng rng) : spec_(spec), rng_(rng) {}

  /// Perturbs a nominal compute duration with mean-one lognormal OS noise.
  SimTime compute_time(SimTime nominal);

  /// Service-time multiplier for one storage op: 1.0 most of the time, a
  /// Pareto burst when external interference strikes.
  double storage_multiplier();

  /// Extra delay for one shared-memory copy (exponential with the spec's
  /// shm_jitter_mean; 0 when disabled).
  SimTime copy_jitter();

  const NoiseSpec& spec() const { return spec_; }

 private:
  NoiseSpec spec_;
  Rng rng_;
};

}  // namespace dmr::cluster

#include "trace/jitter_report.hpp"

#include <algorithm>
#include <cstdio>

namespace dmr::trace {

namespace {

std::string num6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

JitterSummary JitterSummary::of(const Sample& s) {
  JitterSummary j;
  j.count = s.count();
  if (s.empty()) return j;
  j.mean = s.mean();
  j.stddev = s.stddev();
  j.min = s.min();
  j.p50 = s.percentile(50.0);
  j.p95 = s.percentile(95.0);
  j.max = s.max();
  j.spread = j.max - j.mean;
  return j;
}

std::vector<std::uint64_t> histogram(const Sample& s, int bins, double lo,
                                     double hi) {
  if (bins < 1) bins = 1;
  std::vector<std::uint64_t> out(static_cast<std::size_t>(bins), 0);
  if (s.empty()) return out;
  const double width = hi > lo ? (hi - lo) / bins : 0.0;
  for (double v : s.values()) {
    int b = width > 0.0 ? static_cast<int>((v - lo) / width) : 0;
    b = std::clamp(b, 0, bins - 1);
    ++out[static_cast<std::size_t>(b)];
  }
  return out;
}

void JitterReport::add(std::string group, std::string label, const Sample& s,
                       int hist_bins) {
  JitterEntry e;
  e.group = std::move(group);
  e.label = std::move(label);
  e.summary = JitterSummary::of(s);
  e.hist_lo = s.empty() ? 0.0 : s.min();
  e.hist_hi = s.empty() ? 0.0 : s.max();
  e.hist = histogram(s, hist_bins, e.hist_lo, e.hist_hi);
  entries_.push_back(std::move(e));
}

Table JitterReport::to_table() const {
  Table t({"group", "label", "n", "mean", "p50", "p95", "max", "spread"});
  for (const JitterEntry& e : entries_) {
    t.add_row({e.group, e.label, std::to_string(e.summary.count),
               Table::num(e.summary.mean, 3), Table::num(e.summary.p50, 3),
               Table::num(e.summary.p95, 3), Table::num(e.summary.max, 3),
               Table::num(e.summary.spread, 3)});
  }
  return t;
}

std::string JitterReport::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const JitterEntry& e = entries_[i];
    if (i > 0) out += ",";
    out += "\n    {\"group\": \"" + escape(e.group) + "\"";
    out += ", \"label\": \"" + escape(e.label) + "\"";
    out += ", \"n\": " + std::to_string(e.summary.count);
    out += ", \"mean\": " + num6(e.summary.mean);
    out += ", \"stddev\": " + num6(e.summary.stddev);
    out += ", \"min\": " + num6(e.summary.min);
    out += ", \"p50\": " + num6(e.summary.p50);
    out += ", \"p95\": " + num6(e.summary.p95);
    out += ", \"max\": " + num6(e.summary.max);
    out += ", \"spread\": " + num6(e.summary.spread);
    out += ", \"hist_lo\": " + num6(e.hist_lo);
    out += ", \"hist_hi\": " + num6(e.hist_hi);
    out += ", \"hist\": [";
    for (std::size_t b = 0; b < e.hist.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(e.hist[b]);
    }
    out += "]}";
  }
  out += entries_.empty() ? "]" : "\n  ]";
  return out;
}

}  // namespace dmr::trace

# Empty dependencies file for fig4_scalability_kraken.
# This may be replaced when dependencies are built.

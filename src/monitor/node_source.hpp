// Snapshot assembly from a live DamarisNode — the glue between the
// middleware and the monitor (kept here so core/ never depends on
// monitor/). The SnapshotFn this produces is what MonitorServer polls:
// every call reads the node's thread-safe accessors (stats(),
// degrade_mode(), outstanding_tickets(), plugin_stats(), an optional
// FaultChecker's live counters) and derives the JitterSummary
// percentiles over the per-iteration persist times.
//
// Thread-safety: the returned closure may be called from the monitor's
// loop thread while the node runs; everything it touches is a
// mutex-guarded or atomic snapshot. The node (and checker) must outlive
// the server.
#pragma once

#include <string>

#include "check/fault_checker.hpp"
#include "core/damaris.hpp"
#include "monitor/server.hpp"
#include "monitor/snapshot.hpp"

namespace dmr::monitor {

struct NodeSourceOptions {
  /// The snapshot's `source` label.
  std::string label = "damaris";
  /// Live fault-ledger counters (nullptr leaves the ledger null on the
  /// wire). Not owned; must outlive the server.
  check::FaultChecker* checker = nullptr;
};

/// One snapshot of `node`, now. sequence/uptime/alerts are left for the
/// server to stamp.
MonitorSnapshot snapshot_of(core::DamarisNode& node,
                            const NodeSourceOptions& opts = {});

/// A SnapshotFn over `node` for MonitorServer's constructor.
MonitorServer::SnapshotFn node_snapshot_fn(core::DamarisNode& node,
                                           NodeSourceOptions opts = {});

}  // namespace dmr::monitor

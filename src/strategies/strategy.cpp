#include "strategies/strategy.hpp"

#include <cassert>

#include "strategies/experiment.hpp"

namespace dmr::strategies {

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFilePerProcess: return "file-per-process";
    case StrategyKind::kCollectiveIo: return "collective-io";
    case StrategyKind::kDamaris: return "damaris";
    case StrategyKind::kNoIo: return "no-io";
  }
  return "?";
}

const char* transport_name(Transport t) {
  switch (t) {
    case Transport::kSharedMemory: return "shared-memory";
    case Transport::kFuse: return "fuse";
    case Transport::kDedicatedNodes: return "dedicated-nodes";
  }
  return "?";
}

double scalability_factor(int cores, double t_n, double c_base) {
  if (t_n <= 0) return 0.0;
  return static_cast<double>(cores) * c_base / t_n;
}

RunResult run_strategy(const RunConfig& cfg) {
  assert(cfg.num_nodes >= 1);
  assert(cfg.iterations >= 1);
  // Install before construction so resource setup is visible too; a null
  // tracer leaves any ambient tracer in place.
  trace::ScopedTracer scoped(cfg.tracer);
  Experiment exp(cfg);
  return exp.run();
}

}  // namespace dmr::strategies

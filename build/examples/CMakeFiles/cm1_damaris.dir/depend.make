# Empty dependencies file for cm1_damaris.
# This may be replaced when dependencies are built.

#include "mc/race_detector.hpp"

#include <sstream>

namespace dmr::mc {

namespace {

/// Stable map key for a synchronization object. Pointers are at least
/// 4-byte aligned, so folding the kind and index into the low/high bits
/// cannot collide two distinct objects.
std::uint64_t sync_key(const shm::SyncPoint& sync) {
  return reinterpret_cast<std::uint64_t>(sync.object) ^
         (static_cast<std::uint64_t>(sync.kind) << 62) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sync.index))
          << 40);
}

}  // namespace

std::string AccessSite::to_string() const {
  std::ostringstream os;
  os << (write ? "write" : "read") << " of [" << offset << ", +" << size
     << ") by " << (thread_name.empty() ? "thread " + std::to_string(tid)
                                        : thread_name)
     << " in " << op;
  if (step >= 0) os << " (step " << step << ")";
  return os.str();
}

std::string RaceReport::to_string() const {
  return "data race: " + first.to_string() + "  <-unordered->  " +
         second.to_string();
}

void HbRaceDetector::register_thread(int tid, std::string name) {
  MutexLock lock(mutex_);
  thread_names_[tid] = std::move(name);
  if (static_cast<std::size_t>(tid) >= thread_clocks_.size()) {
    thread_clocks_.resize(static_cast<std::size_t>(tid) + 1);
  }
  // Every thread starts at time 1 in its own component so that two
  // never-synchronized threads' epochs are mutually unobserved.
  if (thread_clocks_[tid].of(tid) == 0) thread_clocks_[tid].set(tid, 1);
}

void HbRaceDetector::set_current_thread(int tid) {
  MutexLock lock(mutex_);
  forced_tid_ = tid;
}

void HbRaceDetector::set_context(const char* op, int step) {
  MutexLock lock(mutex_);
  context_op_ = op;
  context_step_ = step;
}

void HbRaceDetector::thread_create(int parent, int child) {
  MutexLock lock(mutex_);
  if (static_cast<std::size_t>(std::max(parent, child)) >=
      thread_clocks_.size()) {
    thread_clocks_.resize(static_cast<std::size_t>(std::max(parent, child)) +
                          1);
  }
  if (thread_clocks_[child].of(child) == 0) thread_clocks_[child].set(child, 1);
  thread_clocks_[child].join(thread_clocks_[parent]);
  thread_clocks_[parent].tick(parent);
}

void HbRaceDetector::thread_join(int parent, int child) {
  MutexLock lock(mutex_);
  if (static_cast<std::size_t>(std::max(parent, child)) >=
      thread_clocks_.size()) {
    thread_clocks_.resize(static_cast<std::size_t>(std::max(parent, child)) +
                          1);
  }
  thread_clocks_[parent].join(thread_clocks_[child]);
}

int HbRaceDetector::current_locked() {
  if (forced_tid_ >= 0) {
    if (static_cast<std::size_t>(forced_tid_) >= thread_clocks_.size()) {
      thread_clocks_.resize(static_cast<std::size_t>(forced_tid_) + 1);
    }
    if (thread_clocks_[forced_tid_].of(forced_tid_) == 0) {
      thread_clocks_[forced_tid_].set(forced_tid_, 1);
    }
    return forced_tid_;
  }
  const auto id = std::this_thread::get_id();
  auto it = real_thread_ids_.find(id);
  if (it == real_thread_ids_.end()) {
    const int tid = static_cast<int>(real_thread_ids_.size());
    it = real_thread_ids_.emplace(id, tid).first;
    if (static_cast<std::size_t>(tid) >= thread_clocks_.size()) {
      thread_clocks_.resize(static_cast<std::size_t>(tid) + 1);
    }
    if (thread_clocks_[tid].of(tid) == 0) thread_clocks_[tid].set(tid, 1);
    if (!thread_names_.count(tid)) {
      thread_names_[tid] = "thread-" + std::to_string(tid);
    }
  }
  return it->second;
}

AccessSite HbRaceDetector::site_of(const Access& a) const { return a.site; }

void HbRaceDetector::record_access(const shm::Block& block, bool write) {
  MutexLock lock(mutex_);
  const int tid = current_locked();
  if (static_cast<std::size_t>(tid) >= thread_clocks_.size()) {
    thread_clocks_.resize(static_cast<std::size_t>(tid) + 1);
  }
  if (thread_clocks_[tid].of(tid) == 0) thread_clocks_[tid].set(tid, 1);
  const VectorClock& clock = thread_clocks_[tid];

  Access a;
  a.offset = block.offset;
  a.size = block.size;
  a.write = write;
  a.epoch = Epoch{tid, clock.of(tid)};
  a.site = AccessSite{block.offset,
                      block.size,
                      write,
                      tid,
                      thread_names_.count(tid) ? thread_names_[tid] : "",
                      context_op_,
                      context_step_};

  for (const Access& old : accesses_) {
    if (!(old.write || write)) continue;  // read-read never conflicts
    const bool overlap = old.offset < block.offset + block.size &&
                         block.offset < old.offset + old.size;
    if (!overlap) continue;
    if (old.epoch.tid == tid) continue;  // program order
    if (clock.observed(old.epoch)) continue;  // happens-before edge exists
    if (races_.size() < 100) {
      races_.push_back(RaceReport{site_of(old), a.site});
    }
  }
  accesses_.push_back(std::move(a));
}

void HbRaceDetector::on_write(const shm::Block& block) {
  record_access(block, /*write=*/true);
}

void HbRaceDetector::on_read(const shm::Block& block) {
  record_access(block, /*write=*/false);
}

void HbRaceDetector::on_acquire(const shm::SyncPoint& sync) {
  MutexLock lock(mutex_);
  const int tid = current_locked();
  thread_clocks_[tid].join(sync_clocks_[sync_key(sync)]);
  ++channel_stats_[shm::sync_channel_name(sync.kind)].acquires;
}

void HbRaceDetector::on_release(const shm::SyncPoint& sync) {
  MutexLock lock(mutex_);
  const int tid = current_locked();
  // Accumulating join (not overwrite): a mutex's clock remembers every
  // prior critical section, which is exactly the edge a later acquirer
  // is entitled to.
  sync_clocks_[sync_key(sync)].join(thread_clocks_[tid]);
  thread_clocks_[tid].tick(tid);
  ++channel_stats_[shm::sync_channel_name(sync.kind)].releases;
}

std::map<std::string, HbRaceDetector::ChannelStats>
HbRaceDetector::channel_stats() const {
  MutexLock lock(mutex_);
  return channel_stats_;
}

std::vector<RaceReport> HbRaceDetector::races() const {
  MutexLock lock(mutex_);
  return races_;
}

std::size_t HbRaceDetector::race_count() const {
  MutexLock lock(mutex_);
  return races_.size();
}

std::string HbRaceDetector::report() const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  if (races_.empty()) {
    os << "no data races\n";
  } else {
    os << races_.size() << " data race(s):\n";
    for (const RaceReport& r : races_) os << "  " << r.to_string() << "\n";
  }
  for (const auto& [channel, stats] : channel_stats_) {
    os << "  sync channel " << channel << ": " << stats.acquires
       << " acquire(s), " << stats.releases << " release(s)\n";
  }
  return os.str();
}

}  // namespace dmr::mc

#include <gtest/gtest.h>

#include <vector>

#include "cluster/presets.hpp"
#include "des/process.hpp"
#include "simmpi/collective_io.hpp"
#include "simmpi/world.hpp"

namespace dmr::simmpi {
namespace {

cluster::PlatformSpec quiet() {
  cluster::PlatformSpec p = cluster::kraken();
  p.noise.os_noise_sigma = 0.0;
  p.noise.interference_prob = 0.0;
  return p;
}

TEST(World, RankMappingFullNodes) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 4, 1);
  World w(m, 48);
  EXPECT_EQ(w.size(), 48);
  EXPECT_EQ(w.ranks_per_node(), 12);
  EXPECT_EQ(w.num_nodes_used(), 4);
  EXPECT_EQ(w.node_of(0), 0);
  EXPECT_EQ(w.node_of(13), 1);
  EXPECT_EQ(w.core_of(13), 13);
  EXPECT_TRUE(w.is_node_leader(12));
  EXPECT_FALSE(w.is_node_leader(13));
}

TEST(World, RankMappingDamarisMode) {
  // 11 compute ranks per 12-core node: core 11 of each node is left for
  // the dedicated Damaris process.
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 4, 1);
  World w(m, 44, /*ranks_per_node=*/11);
  EXPECT_EQ(w.num_nodes_used(), 4);
  EXPECT_EQ(w.node_of(11), 1);
  EXPECT_EQ(w.core_of(11), 12);  // first core of node 1
  EXPECT_EQ(w.core_of(10), 10);
}

TEST(World, BarrierReleasesAtLastArrival) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 1, 1);
  World w(m, 4, 4);
  std::vector<double> t(4, -1);
  for (int r = 0; r < 4; ++r) {
    eng.spawn([](des::Engine& e, World& world, std::vector<double>& out,
                 int rank) -> des::Process {
      co_await e.delay(rank * 1.0);
      co_await world.barrier();
      out[rank] = e.now();
    }(eng, w, t, r));
  }
  eng.run();
  for (double v : t) {
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 3.001);  // + dissemination latency only
  }
}

TEST(World, SendIntraNodeFasterThanInterNode) {
  auto send_time = [](int to) {
    des::Engine eng;
    cluster::Machine m(eng, quiet(), 2, 1);
    World w(m, 24, 12);
    double done = -1;
    eng.spawn([](des::Engine& e, World& world, int dest,
                 double& out) -> des::Process {
      co_await world.send(0, dest, 64 * MiB);
      out = e.now();
    }(eng, w, to, done));
    eng.run();
    return done;
  };
  EXPECT_LT(send_time(1), send_time(12));
}

TEST(World, AllreduceMaxDeliversGlobalMax) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 1, 1);
  World w(m, 8, 8);
  std::vector<double> got(8, -1);
  for (int r = 0; r < 8; ++r) {
    eng.spawn([](des::Engine& e, World& world, std::vector<double>& out,
                 int rank) -> des::Process {
      co_await e.delay(rank * 0.1);
      out[rank] = co_await world.allreduce_max(static_cast<double>(rank * 3));
    }(eng, w, got, r));
  }
  eng.run();
  for (double v : got) EXPECT_DOUBLE_EQ(v, 21.0);
}

TEST(World, AllreduceMaxIsCyclic) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 1, 1);
  World w(m, 2, 2);
  std::vector<double> results;
  for (int r = 0; r < 2; ++r) {
    eng.spawn([](des::Engine&, World& world, std::vector<double>& out,
                 int rank) -> des::Process {
      for (int round = 0; round < 3; ++round) {
        double v = co_await world.allreduce_max(rank + round * 10.0);
        if (rank == 0) out.push_back(v);
      }
    }(eng, w, results, r));
  }
  eng.run();
  EXPECT_EQ(results, (std::vector<double>{1.0, 11.0, 21.0}));
}

TEST(World, AlltoallSynchronizes) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 2, 1);
  World w(m, 24, 12);
  std::vector<double> t(24, -1);
  for (int r = 0; r < 24; ++r) {
    eng.spawn([](des::Engine& e, World& world, std::vector<double>& out,
                 int rank) -> des::Process {
      co_await world.alltoall(rank, 1 * MiB);
      out[rank] = e.now();
    }(eng, w, t, r));
  }
  eng.run();
  double lo = t[0], hi = t[0];
  for (double v : t) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(lo, hi, 1e-9);  // collective completion
  EXPECT_GT(lo, 0.0);
}

TEST(World, GatherRootPaysDrainCost) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 2, 1);
  World w(m, 24, 12);
  std::vector<double> t(24, -1);
  for (int r = 0; r < 24; ++r) {
    eng.spawn([](des::Engine& e, World& world, std::vector<double>& out,
                 int rank) -> des::Process {
      co_await world.gather(rank, 0, 4 * MiB);
      out[rank] = e.now();
    }(eng, w, t, r));
  }
  eng.run();
  // Root finishes last: it must absorb everyone's payload.
  for (int r = 1; r < 24; ++r) EXPECT_GE(t[0], t[r]);
}

TEST(CollectiveWriter, WritesAllBytesOnce) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 2, 1);
  World w(m, 24, 12);
  fs::SimFs sim_fs(m);
  CollectiveWriter writer(w, sim_fs);
  const Bytes per_rank = 4 * MiB;
  for (int r = 0; r < 24; ++r) {
    eng.spawn([](des::Engine&, World&, CollectiveWriter& cw, int rank,
                 Bytes n) -> des::Process {
      co_await cw.collective_write(rank, n);
    }(eng, w, writer, r, per_rank));
  }
  eng.run();
  EXPECT_GE(sim_fs.stats().bytes_written, per_rank * 24);
  EXPECT_EQ(sim_fs.stats().creates, 1u);  // one shared file
  EXPECT_EQ(writer.num_aggregators(), 2);
}

TEST(CollectiveWriter, AllRanksLeaveTogether) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 2, 1);
  World w(m, 24, 12);
  fs::SimFs sim_fs(m);
  CollectiveWriter writer(w, sim_fs);
  std::vector<double> t(24, -1);
  for (int r = 0; r < 24; ++r) {
    eng.spawn([](des::Engine& e, World&, CollectiveWriter& cw, int rank,
                 std::vector<double>& out) -> des::Process {
      co_await cw.collective_write(rank, 2 * MiB);
      out[rank] = e.now();
    }(eng, w, writer, r, t));
  }
  eng.run();
  for (int r = 1; r < 24; ++r) EXPECT_NEAR(t[r], t[0], 1e-6);
}

TEST(CollectiveWriter, SharedFileTriggersLockTraffic) {
  des::Engine eng;
  cluster::Machine m(eng, quiet(), 4, 1);
  World w(m, 48, 12);
  fs::SimFs sim_fs(m);
  CollectiveWriter writer(w, sim_fs);
  for (int r = 0; r < 48; ++r) {
    eng.spawn([](des::Engine&, World&, CollectiveWriter& cw, int rank)
                  -> des::Process {
      co_await cw.collective_write(rank, 2 * MiB);
    }(eng, w, writer, r));
  }
  eng.run();
  EXPECT_GT(sim_fs.stats().lock_revocations, 0u);
}

}  // namespace
}  // namespace dmr::simmpi

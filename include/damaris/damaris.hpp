// Umbrella header for the Damaris reproduction library.
//
// The library splits into two halves that share the allocator, codec and
// scheduler code:
//
//  * the real middleware — run Damaris in your own (threaded) program:
//      dmr::config::Config      XML configuration (layouts, variables,
//                               events)
//      dmr::core::DamarisNode   the node: shared buffer + dedicated core
//      dmr::core::Client        per-compute-core handle (write / signal /
//                               alloc / commit / end_iteration / finalize)
//      dmr::core::capi          the paper's df_* / dc_* C-style API
//      dmr::format::Dh5Reader   read the self-describing output files
//
//  * the cluster simulator — reproduce the paper's evaluation at up to
//    ~10k simulated cores:
//      dmr::cluster::kraken / grid5000 / blueprint   platform presets
//      dmr::strategies::run_strategy                 FPP / collective /
//                                                    Damaris / no-I/O runs
//      dmr::experiments::*                           canned paper setups
//
// See examples/quickstart.cpp for the 60-second tour.
#pragma once

// Real middleware.
#include "config/config.hpp"     // IWYU pragma: export
#include "core/async.hpp"        // IWYU pragma: export
#include "core/capi.hpp"         // IWYU pragma: export
#include "core/damaris.hpp"      // IWYU pragma: export
#include "core/metadata.hpp"     // IWYU pragma: export
#include "core/persistency.hpp"  // IWYU pragma: export
#include "core/plugin.hpp"       // IWYU pragma: export
#include "format/dh5.hpp"        // IWYU pragma: export
#include "format/pipeline.hpp"   // IWYU pragma: export
#include "shm/event_queue.hpp"   // IWYU pragma: export
#include "shm/shared_buffer.hpp" // IWYU pragma: export

// Mini-CM1 application.
#include "cm1/solver.hpp"    // IWYU pragma: export
#include "cm1/workload.hpp"  // IWYU pragma: export

// Post-processing and in-situ visualization.
#include "postproc/catalog.hpp"  // IWYU pragma: export
#include "vis/render.hpp"        // IWYU pragma: export

// Cluster simulator.
#include "cluster/presets.hpp"          // IWYU pragma: export
#include "experiments/experiments.hpp"  // IWYU pragma: export
#include "strategies/strategy.hpp"      // IWYU pragma: export

#include "core/persistency.hpp"

#include <chrono>
#include <filesystem>

namespace dmr::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

iopath::CompressionModel compression_model_for(const config::Config& cfg,
                                               const std::string& variable) {
  const config::VariableDecl* decl = cfg.find_variable(variable);
  return iopath::CompressionModel::for_pipeline_name(decl ? decl->pipeline
                                                          : "");
}

PersistencyLayer::PersistencyLayer(std::string output_dir, std::string prefix,
                                   int node_id)
    : output_dir_(std::move(output_dir)),
      prefix_(std::move(prefix)),
      node_id_(node_id) {}

std::string PersistencyLayer::file_path(std::int64_t iteration) const {
  return output_dir_ + "/" + prefix_ + "_node" + std::to_string(node_id_) +
         "_it" + std::to_string(iteration) + ".dh5";
}

Status PersistencyLayer::write_blocks(
    std::int64_t iteration, const std::vector<VariableBlock>& blocks,
    const shm::SharedBuffer& buffer, const config::Config& cfg) {
  std::error_code ec;
  std::filesystem::create_directories(output_dir_, ec);
  if (ec) return io_error("cannot create " + output_dir_);

  auto writer = format::Dh5Writer::create(file_path(iteration));
  if (!writer.is_ok()) return writer.status();

  for (const VariableBlock& b : blocks) {
    format::DatasetInfo info;
    info.name = b.variable;
    info.iteration = b.iteration;
    info.source = b.source;
    info.layout = b.layout;
    const std::span<const std::byte> raw(buffer.data(b.block), b.size);

    // Transform: run the variable's codec chain (identity encodes are a
    // plain copy, so splitting from the container write is lossless).
    const iopath::CompressionModel model =
        compression_model_for(cfg, b.variable);
    auto t0 = Clock::now();
    format::EncodedBuffer encoded = model.codec_pipeline().encode(raw);
    stage_stats_.of(iopath::StageKind::kTransform)
        .add(seconds_since(t0), b.size, encoded.data.size());

    // Storage: append the encoded dataset to the container.
    t0 = Clock::now();
    Status s = writer.value().add_encoded(info, encoded, raw.size());
    stage_stats_.of(iopath::StageKind::kStorage)
        .add(seconds_since(t0), encoded.data.size(), encoded.data.size());
    if (!s.is_ok()) return s;
    ++stats_.datasets_written;
  }
  stats_.raw_bytes += writer.value().raw_bytes();
  stats_.stored_bytes += writer.value().stored_bytes();
  const auto t0 = Clock::now();
  Status s = writer.value().finalize();
  stage_stats_.of(iopath::StageKind::kStorage).add(seconds_since(t0), 0, 0);
  if (!s.is_ok()) return s;
  ++stats_.files_written;
  return Status::ok();
}

}  // namespace dmr::core

// Lightweight C++ source model shared by the dmr_verify rule passes
// (ISSUE 9 tentpole). Same philosophy as tools/dmr_lint: no libclang,
// no preprocessor — a comment/string stripper, a heuristic brace
// tracker that recovers function boundaries, and offset→line helpers.
// dmr_verify layers per-function dataflow on top (see model.hpp), which
// is why the extraction here also records byte offsets: the rules need
// to ask "is this occurrence inside that function's body?".
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace dmr::analysis {

/// One function (or method) recovered from stripped text. Offsets index
/// into the stripped text of the owning file; the stripper preserves
/// newlines, so offsets and line numbers agree with the raw file.
struct Function {
  std::string name;    ///< as written, possibly qualified (Foo::bar)
  std::string tail;    ///< unqualified tail (bar)
  int line = 0;        ///< 1-based line of the opening brace
  std::string header;  ///< signature segment before the opening brace
  std::string body;    ///< stripped text between the braces
  std::size_t header_off = 0;  ///< offset where the header segment starts
  std::size_t body_off = 0;    ///< offset just past the opening brace
  std::size_t body_end = 0;    ///< offset of the closing brace
};

/// A parsed source file: raw text (for comment-borne annotations like
/// `sync: <channel>`), its stripped twin (for every code-level rule),
/// and the function index.
struct SourceFile {
  std::string rel;   ///< '/'-separated path relative to the root
  std::string unit;  ///< dir/stem — a header+impl pair shares one unit
  bool is_header = false;
  std::string raw;
  std::string stripped;
  std::vector<std::string> raw_lines;
  std::vector<Function> functions;
};

/// Replaces comments and string/char-literal contents with spaces
/// (newlines preserved) so rules never fire on prose or literals.
std::string strip_comments_and_strings(const std::string& in);

std::vector<std::string> split_lines(const std::string& text);

std::optional<std::string> read_file(const std::string& path);

/// Splits stripped text into function bodies (heuristic brace tracker:
/// a '{' whose preceding segment looks like `name(...)` opens a
/// function; nested braces stay inside it).
std::vector<Function> extract_functions(const std::string& stripped);

/// True when a brace-preceding segment looks like a function signature
/// (shared between extract_functions and the class-member parser).
bool looks_like_function_header(const std::string& seg);

int line_of_offset(const std::string& text, std::size_t off);

/// 1-based line of `off` within `fn.body`, in file coordinates.
int line_in_body(const Function& fn, std::size_t off);

bool is_ident_char(char c);

/// `Foo::bar` -> `bar` (identity for unqualified names).
std::string tail_name(const std::string& qualified);

/// Offset just past the closer matching the opener at `open`
/// (text[open] must be `open_ch`); npos when unbalanced.
std::size_t match_forward(const std::string& text, std::size_t open,
                          char open_ch, char close_ch);

/// Removes balanced `<...>` template-argument groups from a declaration
/// segment, so `std::deque<Waiter> waiters_` becomes
/// `std::deque waiters_` and declarator parsing sees only the name.
std::string strip_template_args(const std::string& seg);

}  // namespace dmr::analysis

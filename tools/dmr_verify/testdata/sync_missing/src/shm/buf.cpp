// Fixture: src/shm code with an acquire/release protocol but no
// sync_channels.hpp table — the analyzer must demand one.
#include <atomic>

namespace demo {

std::atomic<int> ready_{0};

int wait_ready() { return ready_.load(std::memory_order_acquire); }
void publish() { ready_.store(1, std::memory_order_release); }

}  // namespace demo

// Data-transfer scheduling (paper §IV-D "Data transfer scheduling").
//
// "Each dedicated core computes an estimation of the computation time of
// an iteration from a first run of the simulation. This time is then
// divided into as many slots as dedicated cores. Each dedicated core
// then waits for its slot before writing." — no inter-process
// communication involved; the estimate is purely local.
//
// The paper reports 13.1 GB/s instead of 9.7 GB/s on 2304 Kraken cores
// with this strategy.
//
// Degenerate inputs are handled, not asserted, so the scheduler can sit
// inside a pipeline stage fed by arbitrary configurations:
//   - a non-positive iteration estimate collapses every slot to width 0
//     at offset 0 (nobody waits — scheduling is a no-op until
//     update_estimate() learns a real duration);
//   - num_slots < 1 is treated as a single slot spanning the iteration;
//   - more writers than slots wrap around (writer_id % num_slots), so
//     surplus writers share slots round-robin instead of crashing.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace dmr::sched {

/// Default smoothing factor for the iteration-estimate EMA. Overridable
/// per scheduler (and from XML via `<scheduling alpha="...">`).
inline constexpr double kDefaultAlpha = 0.3;

class SlotScheduler {
 public:
  /// `estimated_iteration` is the expected time between two write
  /// phases (seconds). `writer_id` may exceed `num_slots` (it wraps).
  /// `alpha` is the EMA smoothing factor used by update_estimate();
  /// values outside (0, 1] are clamped into that range.
  SlotScheduler(SimTime estimated_iteration, int num_slots, int writer_id,
                double alpha = kDefaultAlpha);

  /// Start of this writer's slot, as an offset from the beginning of
  /// the iteration (in [0, estimated_iteration)).
  SimTime slot_start() const;

  /// Width of one slot (0 when the estimate is not yet positive).
  SimTime slot_width() const;

  /// How long a dedicated core that became ready `elapsed` seconds after
  /// the iteration started must still wait before writing (0 if its slot
  /// has already begun).
  SimTime wait_time(SimTime elapsed_since_iteration_start) const;

  /// Refines the iteration estimate from a measured duration
  /// (exponential moving average with the configured alpha).
  /// Non-positive measurements are ignored; the first positive
  /// measurement replaces a non-positive initial estimate outright.
  void update_estimate(SimTime measured_iteration);

  SimTime estimated_iteration() const { return estimate_; }
  int num_slots() const { return num_slots_; }
  /// The slot this writer lands in after wrapping.
  int slot_id() const { return slot_id_; }
  /// EMA smoothing factor after clamping into (0, 1].
  double alpha() const { return alpha_; }

 private:
  SimTime estimate_;
  int num_slots_;
  int slot_id_;
  double alpha_;
};

/// Clamps an EMA smoothing factor into the valid (0, 1] range; NaN and
/// non-positive values fall back to kDefaultAlpha.
double clamp_alpha(double alpha);

}  // namespace dmr::sched

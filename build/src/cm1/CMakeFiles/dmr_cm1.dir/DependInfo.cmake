
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cm1/solver.cpp" "src/cm1/CMakeFiles/dmr_cm1.dir/solver.cpp.o" "gcc" "src/cm1/CMakeFiles/dmr_cm1.dir/solver.cpp.o.d"
  "/root/repo/src/cm1/workload.cpp" "src/cm1/CMakeFiles/dmr_cm1.dir/workload.cpp.o" "gcc" "src/cm1/CMakeFiles/dmr_cm1.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Clean fixture: ordered iteration into a digest, explicit memory
// orders everywhere, no pointer keys, no wall-clock reads in sim code.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace demo {

std::uint64_t fnv1a(const std::string& s);

class Stats {
 public:
  std::uint64_t digest() const {
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& kv : cells_) h ^= fnv1a(kv.first);
    return h;
  }

  void bump() { hits_.fetch_add(1, std::memory_order_seq_cst); }
  std::uint64_t hits() const {
    return hits_.load(std::memory_order_seq_cst);
  }

 private:
  std::map<std::string, double> cells_;
  std::atomic<std::uint64_t> hits_{0};
};

}  // namespace demo

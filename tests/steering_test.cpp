// Tests for the steering extensions: configured parameters, runtime
// updates, and external event injection.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>

#include "config/config.hpp"
#include "core/damaris.hpp"

namespace dmr::core {
namespace {

const char* kSteeringConfig = R"(
<damaris>
  <buffer size="1048576" policy="partitioned"/>
  <layout name="l" type="float32" dimensions="8"/>
  <variable name="v" layout="l"/>
  <event name="poke" action="custom" scope="local"/>
  <parameter name="output_interval" value="10"/>
  <parameter name="threshold" value="2.5"/>
  <parameter name="mode" value="storm-chase"/>
</damaris>)";

struct SteeringFixture : public ::testing::Test {
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("steering_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    auto cfg = config::Config::from_string(kSteeringConfig);
    ASSERT_TRUE(cfg.is_ok()) << cfg.status().to_string();
    NodeOptions opts;
    opts.output_dir = dir_.string();
    node_ = std::make_unique<DamarisNode>(std::move(cfg.value()), 2, opts);
  }
  void TearDown() override {
    node_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<DamarisNode> node_;
};

TEST_F(SteeringFixture, ConfigParametersParsed) {
  const auto& params = node_->config().parameters();
  ASSERT_EQ(params.size(), 3u);
  EXPECT_EQ(params.at("output_interval").value, "10");
}

TEST_F(SteeringFixture, InitialValuesVisible) {
  EXPECT_EQ(node_->parameter("output_interval").value_or(""), "10");
  EXPECT_EQ(node_->parameter_int("output_interval").value_or(-1), 10);
  EXPECT_DOUBLE_EQ(node_->parameter_double("threshold").value_or(0), 2.5);
  EXPECT_EQ(node_->parameter("mode").value_or(""), "storm-chase");
  EXPECT_FALSE(node_->parameter("ghost").has_value());
}

TEST_F(SteeringFixture, TypedReadersRejectGarbage) {
  EXPECT_FALSE(node_->parameter_int("mode").has_value());
  EXPECT_FALSE(node_->parameter_double("mode").has_value());
  // Ints parse as doubles too.
  EXPECT_DOUBLE_EQ(node_->parameter_double("output_interval").value_or(0),
                   10.0);
}

TEST_F(SteeringFixture, SetParameterUpdatesAndValidates) {
  ASSERT_TRUE(node_->set_parameter("output_interval", "1").is_ok());
  EXPECT_EQ(node_->parameter_int("output_interval").value_or(-1), 1);
  auto s = node_->set_parameter("undeclared", "x");
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
}

TEST_F(SteeringFixture, ExternalSignalRunsActionOnce) {
  std::atomic<int> calls{0};
  node_->plugins().register_action("custom", [&](EventContext& ctx) {
    EXPECT_EQ(ctx.source, -1);  // external, not a client
    calls.fetch_add(1);
  });
  ASSERT_TRUE(node_->start().is_ok());
  ASSERT_TRUE(node_->signal_external("poke", 7).is_ok());
  EXPECT_EQ(node_->signal_external("nonexistent", 0).code(),
            ErrorCode::kNotFound);
  for (int c = 0; c < 2; ++c) (void)node_->client(c).finalize();
  ASSERT_TRUE(node_->stop().is_ok());
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(SteeringFixture, PluginCanSteer) {
  // A plugin adjusting a parameter from inside the dedicated core —
  // content-driven steering.
  node_->plugins().register_action("custom", [&](EventContext& ctx) {
    (void)ctx.node.set_parameter("output_interval", "2");
  });
  ASSERT_TRUE(node_->start().is_ok());
  ASSERT_TRUE(node_->client(0).signal("poke", 0).is_ok());
  for (int c = 0; c < 2; ++c) (void)node_->client(c).finalize();
  ASSERT_TRUE(node_->stop().is_ok());
  EXPECT_EQ(node_->parameter_int("output_interval").value_or(-1), 2);
}

TEST(SteeringConfig, RejectsBadParameters) {
  EXPECT_FALSE(config::Config::from_string(
                   R"(<damaris><parameter value="3"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(config::Config::from_string(
                   R"(<damaris><parameter name="p"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(config::Config::from_string(R"(
    <damaris>
      <parameter name="p" value="1"/>
      <parameter name="p" value="2"/>
    </damaris>)")
                   .is_ok());
}

}  // namespace
}  // namespace dmr::core

// Tests for the tracing layer (src/trace/): ring-buffer wrap and
// concurrency, tracer gating and drain order, the Chrome trace_event
// exporter (golden file), JitterReport math pinned against
// common/stats.hpp, and the tracing-is-pure-observation contract on a
// full strategy run.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "experiments/experiments.hpp"
#include "strategies/strategy.hpp"
#include "trace/chrome_export.hpp"
#include "trace/event.hpp"
#include "trace/jitter_report.hpp"
#include "trace/ring.hpp"
#include "trace/tracer.hpp"

namespace dmr::trace {
namespace {

TraceEvent span(const char* name, double t, double dur, EntityId entity,
                std::uint64_t bytes = 0, std::int32_t phase = -1) {
  TraceEvent ev;
  ev.name = name;
  ev.t = t;
  ev.dur = dur;
  ev.bytes = bytes;
  ev.entity = entity;
  ev.phase = phase;
  ev.cat = Category::kDes;
  ev.kind = EventKind::kSpan;
  return ev;
}

// ------------------------------------------------------------- TraceRing

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
}

TEST(TraceRing, WrapKeepsNewestAndCountsOverwrites) {
  TraceRing ring(8);
  for (int i = 0; i < 20; ++i) {
    ring.record(span("ev", static_cast<double>(i), 1.0,
                     {EntityType::kRank, 0}, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);

  const std::vector<TraceEvent> got = ring.drain();
  ASSERT_EQ(got.size(), 8u);
  // Oldest-first snapshot of the 8 newest events: bytes 12..19.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].bytes, 12 + i);
    EXPECT_DOUBLE_EQ(got[i].t, static_cast<double>(12 + i));
  }
}

TEST(TraceRing, NoWrapDeliversEveryEventExactlyOnce) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 256;
  TraceRing ring(kThreads * kPerThread);  // large enough: no wrapping

  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&ring, th] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.record(span("ev", 0.0, 1.0,
                         {EntityType::kRank, static_cast<std::uint32_t>(th)},
                         static_cast<std::uint64_t>(th * kPerThread + i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ring.overwritten(), 0u);
  const std::vector<TraceEvent> got = ring.drain();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every payload 0..N-1 shows up exactly once.
  std::vector<int> seen(kThreads * kPerThread, 0);
  for (const TraceEvent& ev : got) seen[ev.bytes]++;
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(TraceRing, ConcurrentWritersWithWrapStayConsistent) {
  // Heavy wrapping from many threads: the seqlock must keep drained
  // slots internally consistent (t encodes the same payload as bytes).
  // Run under TSan via scripts/check.sh.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  TraceRing ring(64);

  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&ring, th] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t payload =
            static_cast<std::uint64_t>(th * kPerThread + i);
        ring.record(span("ev", static_cast<double>(payload), 1.0,
                         {EntityType::kRank, static_cast<std::uint32_t>(th)},
                         payload));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ring.overwritten(),
            static_cast<std::uint64_t>(kThreads * kPerThread) -
                ring.capacity());
  const std::vector<TraceEvent> got = ring.drain();
  EXPECT_LE(got.size(), ring.capacity());
  for (const TraceEvent& ev : got) {
    EXPECT_DOUBLE_EQ(ev.t, static_cast<double>(ev.bytes))
        << "torn slot: fields from different events";
  }
}

// ---------------------------------------------------------------- Tracer

TEST(Tracer, CategoryGatingAtRecordAndRuntimeToggle) {
  TracerOptions opts;
  opts.categories = category_bit(Category::kDes);
  Tracer tracer(opts);
  EXPECT_TRUE(tracer.enabled(Category::kDes));
  EXPECT_FALSE(tracer.enabled(Category::kShm));

  tracer.record_span({EntityType::kRank, 0}, Category::kDes, "kept", 1.0, 1.0);
  tracer.record_span({EntityType::kRank, 0}, Category::kShm, "dropped", 2.0,
                     1.0);
  EXPECT_EQ(tracer.recorded(), 1u);

  tracer.set_enabled(Category::kShm, true);
  tracer.record_span({EntityType::kRank, 0}, Category::kShm, "kept2", 3.0,
                     1.0);
  tracer.set_enabled(Category::kDes, false);
  tracer.record_span({EntityType::kRank, 0}, Category::kDes, "dropped2", 4.0,
                     1.0);

  const std::vector<TraceEvent> got = tracer.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_STREQ(got[0].name, "kept");
  EXPECT_STREQ(got[1].name, "kept2");
}

TEST(Tracer, DrainMergesShardsSortedByTimeThenEntity) {
  Tracer tracer;
  // Record out of order across different entities (hence shards).
  tracer.record_span({EntityType::kFsServer, 3}, Category::kDes, "c", 5.0, 1);
  tracer.record_span({EntityType::kRank, 7}, Category::kDes, "a", 1.0, 1.0);
  tracer.record_span({EntityType::kWriter, 2}, Category::kDes, "b", 5.0, 1.0);
  tracer.record_span({EntityType::kRank, 0}, Category::kDes, "d", 0.5, 1.0);

  const std::vector<TraceEvent> got = tracer.drain();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_STREQ(got[0].name, "d");  // t = 0.5
  EXPECT_STREQ(got[1].name, "a");  // t = 1.0
  EXPECT_STREQ(got[2].name, "b");  // t = 5.0; kWriter entity key sorts
  EXPECT_STREQ(got[3].name, "c");  // before kFsServer at equal t
}

#ifdef DMR_TRACE
TEST(Tracer, ScopedInstallRestoresPreviousAndNullIsNoOp) {
  ASSERT_EQ(current(), nullptr);
  Tracer outer;
  {
    ScopedTracer a(&outer);
    EXPECT_EQ(current(), &outer);
    {
      // A null tracer must leave the ambient one installed (un-traced
      // runs compose with an outer traced session).
      ScopedTracer b(nullptr);
      EXPECT_EQ(current(), &outer);
      Tracer inner;
      {
        ScopedTracer c(&inner);
        EXPECT_EQ(current(), &inner);
      }
      EXPECT_EQ(current(), &outer);
    }
  }
  EXPECT_EQ(current(), nullptr);
}
#endif

// ---------------------------------------------------------- Chrome export

TEST(ChromeExport, GoldenFile) {
  // Pins the exact serialization: lane metadata first (one process per
  // entity type, one thread per entity), then events; seconds become
  // microseconds with three decimals. Perfetto/chrome://tracing load
  // this format directly.
  std::vector<TraceEvent> events;
  events.push_back(
      span("write", 1.5, 0.25, {EntityType::kFsServer, 1}, 4096, 2));
  TraceEvent inst;
  inst.name = "push";
  inst.t = 0.000001;
  inst.bytes = 64;
  inst.entity = {EntityType::kShmQueue, 0};
  inst.cat = Category::kShm;
  inst.kind = EventKind::kInstant;
  events.push_back(inst);
  TraceEvent ctr;
  ctr.name = "used";
  ctr.t = 2.0;
  ctr.bytes = 123456;
  ctr.entity = {EntityType::kShmBuffer, 0};
  ctr.cat = Category::kShm;
  ctr.kind = EventKind::kCounter;
  events.push_back(ctr);

  const std::string expected =
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 3, \"tid\": 0, "
      "\"args\": {\"name\": \"fs servers\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 3, \"tid\": 1, "
      "\"args\": {\"name\": \"fs-server 1\"}},\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 6, \"tid\": 0, "
      "\"args\": {\"name\": \"shm event queue\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 6, \"tid\": 0, "
      "\"args\": {\"name\": \"queue 0\"}},\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 7, \"tid\": 0, "
      "\"args\": {\"name\": \"shm buffer\"}},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 7, \"tid\": 0, "
      "\"args\": {\"name\": \"buffer 0\"}},\n"
      "  {\"name\": \"write\", \"cat\": \"des\", \"ph\": \"X\", "
      "\"dur\": 250000.000, \"ts\": 1500000.000, \"pid\": 3, \"tid\": 1, "
      "\"args\": {\"bytes\": 4096, \"phase\": 2}},\n"
      "  {\"name\": \"push\", \"cat\": \"shm\", \"ph\": \"i\", \"s\": \"t\", "
      "\"ts\": 1.000, \"pid\": 6, \"tid\": 0, \"args\": {\"bytes\": 64}},\n"
      "  {\"name\": \"used\", \"cat\": \"shm\", \"ph\": \"C\", "
      "\"ts\": 2000000.000, \"pid\": 7, \"tid\": 0, "
      "\"args\": {\"value\": 123456}}\n"
      "]}\n";
  EXPECT_EQ(chrome_trace_json(events), expected);
}

TEST(ChromeExport, EscapesQuotesAndBackslashes) {
  std::vector<TraceEvent> events;
  events.push_back(span("a\"b\\c", 0.0, 1.0, {EntityType::kRank, 0}));
  const std::string json = chrome_trace_json(events);
  EXPECT_NE(json.find("\"name\": \"a\\\"b\\\\c\""), std::string::npos);
}

// ------------------------------------------------------------ JitterReport

TEST(JitterReport, SummaryPinnedAgainstSampleStats) {
  Sample s;
  for (double v : {4.0, 8.0, 15.0, 16.0, 23.0, 42.0}) s.add(v);
  const JitterSummary sum = JitterSummary::of(s);
  EXPECT_EQ(sum.count, s.count());
  EXPECT_DOUBLE_EQ(sum.mean, s.mean());
  EXPECT_DOUBLE_EQ(sum.stddev, s.stddev());
  EXPECT_DOUBLE_EQ(sum.min, s.min());
  EXPECT_DOUBLE_EQ(sum.p50, s.percentile(50.0));
  EXPECT_DOUBLE_EQ(sum.p95, s.percentile(95.0));
  EXPECT_DOUBLE_EQ(sum.max, s.max());
  EXPECT_DOUBLE_EQ(sum.spread, s.max() - s.mean());
}

TEST(JitterReport, HistogramBinsAndClamps) {
  Sample s;
  for (double v : {0.0, 1.0, 2.0, 3.0, 3.999, -5.0, 10.0}) s.add(v);
  // 4 bins of width 1 over [0, 4); -5 clamps into bin 0, 10 into bin 3.
  const std::vector<std::uint64_t> h = histogram(s, 4, 0.0, 4.0);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 2u);  // 0.0 and clamped -5.0
  EXPECT_EQ(h[1], 1u);  // 1.0
  EXPECT_EQ(h[2], 1u);  // 2.0
  EXPECT_EQ(h[3], 3u);  // 3.0, 3.999 and clamped 10.0
}

TEST(JitterReport, JsonIsDeterministicAndStructured) {
  auto build = [] {
    JitterReport rep;
    Sample s;
    for (double v : {1.0, 2.0, 3.0}) s.add(v);
    rep.add("9216 cores", "damaris phase", s, 4);
    return rep.to_json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_NE(a.find("\"group\": \"9216 cores\""), std::string::npos);
  EXPECT_NE(a.find("\"label\": \"damaris phase\""), std::string::npos);
  EXPECT_NE(a.find("\"p95\""), std::string::npos);
  EXPECT_NE(a.find("\"hist\""), std::string::npos);
}

// --------------------------------------------- tracing = pure observation

#ifdef DMR_TRACE
TEST(TraceObservation, TracedRunIsBitIdenticalToUntraced) {
  using strategies::RunResult;
  using strategies::StrategyKind;
  auto cfg = experiments::kraken_config(StrategyKind::kDamaris, /*cores=*/48,
                                        /*iterations=*/3,
                                        /*write_interval=*/1);
  const RunResult plain = run_strategy(cfg);

  Tracer tracer;
  cfg.tracer = &tracer;
  const RunResult traced = run_strategy(cfg);
  EXPECT_GT(tracer.recorded(), 0u);

  EXPECT_EQ(plain.total_runtime, traced.total_runtime);
  EXPECT_EQ(plain.aggregate_throughput, traced.aggregate_throughput);
  EXPECT_EQ(plain.bytes_per_phase, traced.bytes_per_phase);
  EXPECT_EQ(plain.phase_seconds.mean(), traced.phase_seconds.mean());
  EXPECT_EQ(plain.phase_seconds.max(), traced.phase_seconds.max());
  EXPECT_EQ(plain.rank_write_seconds.mean(), traced.rank_write_seconds.mean());
  EXPECT_EQ(plain.dedicated_write_seconds.mean(),
            traced.dedicated_write_seconds.mean());
}

TEST(TraceObservation, StrategyRunExportsWellFormedLanes) {
  using strategies::StrategyKind;
  Tracer tracer;
  auto cfg = experiments::kraken_config(StrategyKind::kDamaris, /*cores=*/48,
                                        /*iterations=*/2,
                                        /*write_interval=*/1);
  cfg.tracer = &tracer;
  run_strategy(cfg);

  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_FALSE(events.empty());
  bool saw_des = false, saw_pipeline = false;
  for (const TraceEvent& ev : events) {
    saw_des = saw_des || ev.cat == Category::kDes;
    saw_pipeline = saw_pipeline || ev.cat == Category::kPipeline;
    ASSERT_NE(ev.name, nullptr);
  }
  EXPECT_TRUE(saw_des);       // fs-server service spans
  EXPECT_TRUE(saw_pipeline);  // write-pipeline stage spans

  const std::string json = chrome_trace_json(events);
  EXPECT_EQ(json.substr(0, 1), "{");
  EXPECT_EQ(json.substr(json.size() - 4), std::string("\n]}\n"));
  // Balanced braces — cheap structural sanity without a JSON parser
  // (string values never contain unescaped braces).
  int depth = 0;
  for (char c : json) {
    if (c == '{') depth++;
    if (c == '}') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}
#endif  // DMR_TRACE

}  // namespace
}  // namespace dmr::trace

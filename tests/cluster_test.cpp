#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "cluster/noise.hpp"
#include "cluster/presets.hpp"
#include "common/stats.hpp"
#include "des/process.hpp"

namespace dmr::cluster {
namespace {

TEST(Presets, KrakenShape) {
  PlatformSpec p = kraken();
  EXPECT_EQ(p.name, "kraken");
  EXPECT_EQ(p.node.cores, 12);
  EXPECT_EQ(p.fs.metadata, MetadataModel::kSerializedSingleServer);
  EXPECT_EQ(p.fs.stripe_size, 1 * MiB);
  EXPECT_GT(p.fs.data_servers, 1);
}

TEST(Presets, Grid5000Shape) {
  PlatformSpec p = grid5000();
  EXPECT_EQ(p.node.cores, 24);
  EXPECT_EQ(p.fs.data_servers, 15);
  EXPECT_EQ(p.fs.metadata, MetadataModel::kDistributed);
  EXPECT_EQ(p.fs.lock_revoke_cost, 0.0);  // PVFS: no byte-range locks
}

TEST(Presets, BlueprintShape) {
  PlatformSpec p = blueprint();
  EXPECT_EQ(p.node.cores, 16);
  EXPECT_EQ(p.fs.data_servers, 2);
  EXPECT_EQ(p.fs.metadata, MetadataModel::kSharedDisk);
}

TEST(Machine, LayoutAndLookup) {
  des::Engine eng;
  Machine m(eng, kraken(), 4, /*seed=*/1);
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.cores_per_node(), 12);
  EXPECT_EQ(m.total_cores(), 48);
  EXPECT_EQ(m.node(2).id(), 2);
  EXPECT_EQ(m.node_of_core(0).id(), 0);
  EXPECT_EQ(m.node_of_core(11).id(), 0);
  EXPECT_EQ(m.node_of_core(12).id(), 1);
  EXPECT_EQ(m.node_of_core(47).id(), 3);
}

TEST(Machine, NodesHaveIndependentNics) {
  des::Engine eng;
  Machine m(eng, kraken(), 2, 1);
  double done0 = -1, done1 = -1;
  const Bytes sz = 16 * MiB;
  eng.spawn([](des::Engine& e, Machine& mach, double& out,
               Bytes n) -> des::Process {
    co_await mach.node(0).nic().transfer(n);
    out = e.now();
  }(eng, m, done0, sz));
  eng.spawn([](des::Engine& e, Machine& mach, double& out,
               Bytes n) -> des::Process {
    co_await mach.node(1).nic().transfer(n);
    out = e.now();
  }(eng, m, done1, sz));
  eng.run();
  // Different nodes: no contention, identical completion times.
  EXPECT_DOUBLE_EQ(done0, done1);
}

TEST(Machine, NicContentionWithinNode) {
  des::Engine eng;
  Machine m(eng, kraken(), 1, 1);
  const Bytes sz = 16 * MiB;
  double alone = -1;
  {
    des::Engine e2;
    Machine m2(e2, kraken(), 1, 1);
    e2.spawn([](des::Engine& e, Machine& mach, double& out,
                Bytes n) -> des::Process {
      co_await mach.node(0).nic().transfer(n);
      out = e.now();
    }(e2, m2, alone, sz));
    e2.run();
  }
  std::vector<double> done(12, -1);
  for (int c = 0; c < 12; ++c) {
    eng.spawn([](des::Engine& e, Machine& mach, std::vector<double>& out,
                 int core, Bytes n) -> des::Process {
      co_await mach.node(0).nic().transfer(n);
      out[core] = e.now();
    }(eng, m, done, c, sz));
  }
  eng.run();
  // 12 cores sharing the NIC: everyone ~12x slower than a lone transfer.
  for (double d : done) EXPECT_NEAR(d, alone * 12.0, alone * 0.01);
}

TEST(Noise, ComputeNoiseMeanOne) {
  NoiseSpec spec;
  spec.os_noise_sigma = 0.01;
  NoiseModel nm(spec, Rng(77));
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(nm.compute_time(10.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.01);
  EXPECT_GT(acc.stddev(), 0.0);
  EXPECT_LT(acc.stddev(), 0.2);
}

TEST(Noise, ZeroSigmaIsExact) {
  NoiseSpec spec;
  spec.os_noise_sigma = 0.0;
  NoiseModel nm(spec, Rng(1));
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(nm.compute_time(3.0), 3.0);
}

TEST(Noise, InterferenceMostlyOne) {
  NoiseSpec spec;
  spec.interference_prob = 0.05;
  spec.interference_xm = 1.5;
  spec.interference_alpha = 2.0;
  NoiseModel nm(spec, Rng(5));
  int bursts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double m = nm.storage_multiplier();
    if (m != 1.0) {
      ++bursts;
      EXPECT_GE(m, 1.5);
    }
  }
  EXPECT_NEAR(static_cast<double>(bursts) / n, 0.05, 0.005);
}

TEST(Noise, InterferenceDisabledByDefaultSpec) {
  NoiseSpec spec;  // interference_prob = 0
  NoiseModel nm(spec, Rng(9));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(nm.storage_multiplier(), 1.0);
}

TEST(Machine, SeedReproducibleNoise) {
  des::Engine e1, e2;
  Machine m1(e1, kraken(), 2, 42), m2(e2, kraken(), 2, 42);
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(m1.node(1).noise().compute_time(5.0),
                     m2.node(1).noise().compute_time(5.0));
  }
}

}  // namespace
}  // namespace dmr::cluster

// Minimal XML parser (Xerces-C stand-in) for the Damaris configuration
// file. Supports elements, attributes (single or double quoted), nested
// children, text content, comments, processing instructions and the five
// predefined entities. No DTD/namespaces — configuration files do not
// need them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace dmr::config {

class XmlNode {
 public:
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  // concatenated character data

  /// First attribute value by name, or nullptr.
  const std::string* attr(std::string_view key) const;

  /// Attribute value or `fallback`.
  std::string attr_or(std::string_view key, std::string fallback) const;

  /// First child element by name, or nullptr.
  const XmlNode* child(std::string_view tag) const;

  /// All children with the given element name.
  std::vector<const XmlNode*> children_named(std::string_view tag) const;
};

/// Parses a complete document; returns the root element.
Result<XmlNode> parse_xml(std::string_view input);

/// Reads and parses a file.
Result<XmlNode> parse_xml_file(const std::string& path);

}  // namespace dmr::config

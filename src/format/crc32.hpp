// CRC-32 (IEEE 802.3 polynomial, reflected) for dataset integrity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dmr::format {

/// Computes CRC-32 of `data`; `seed` allows incremental computation:
/// crc32(b, crc32(a)) == crc32(a ++ b).
std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

}  // namespace dmr::format

// Clang thread-safety capability annotations (ISSUE 6 tentpole) and the
// annotated lock types the whole concurrency surface uses.
//
// The dynamic checkers (src/check/ protocol checker, src/mc/ sleep-set
// model checker + FastTrack race detector) verify the interleavings
// they execute; the capability analysis proves lock discipline on
// *every* path at compile time. The two are complementary: annotations
// cannot see through the lock-free structures (TraceRing's seqlock, the
// partitioned allocator), and the dynamic layer cannot enumerate every
// path through the mutex-protected ones.
//
// Macros expand to Clang's capability attributes under a
// thread-safety-capable Clang and to nothing elsewhere (GCC builds are
// unaffected). libstdc++'s std::mutex carries no capability
// annotations, so annotating members alone would teach the analysis
// nothing about lock/unlock; dmr::Mutex / dmr::MutexLock / dmr::CondVar
// below wrap the std primitives with the attributes Clang needs. The
// wrappers are zero-cost: every method is a single inlined forward.
//
// Conventions (enforced by tools/dmr_lint, rule mutex-annotation):
//  - mutex members are dmr::Mutex (never a bare std::mutex) and every
//    member they protect carries DMR_GUARDED_BY(that_mutex_);
//  - private helpers that expect the lock held are suffixed _locked and
//    annotated DMR_REQUIRES(mutex_);
//  - the rare intentional exceptions (seqlock, virtual-thread models)
//    live in tools/dmr_lint/allowlist.txt with a one-line justification.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DMR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DMR_THREAD_ANNOTATION
#define DMR_THREAD_ANNOTATION(x)  // no-op: not a thread-safety-capable Clang
#endif

/// Type declares a capability ("mutex") the analysis can track.
#define DMR_CAPABILITY(x) DMR_THREAD_ANNOTATION(capability(x))
/// RAII type that acquires on construction and releases on destruction.
#define DMR_SCOPED_CAPABILITY DMR_THREAD_ANNOTATION(scoped_lockable)
/// Member may only be touched while holding `x`.
#define DMR_GUARDED_BY(x) DMR_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) protected by `x`.
#define DMR_PT_GUARDED_BY(x) DMR_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (and exit).
#define DMR_REQUIRES(...) \
  DMR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit, not on entry).
#define DMR_ACQUIRE(...) \
  DMR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (held on entry, not on exit).
#define DMR_RELEASE(...) \
  DMR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability when returning `ret`.
#define DMR_TRY_ACQUIRE(ret, ...) \
  DMR_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock guard).
#define DMR_EXCLUDES(...) DMR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Documents lock-order: this mutex is acquired after the listed ones.
#define DMR_ACQUIRED_AFTER(...) \
  DMR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define DMR_ACQUIRED_BEFORE(...) \
  DMR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
/// Escape hatch for code the analysis cannot model; every use needs a
/// justification comment on the same or previous line.
#define DMR_NO_THREAD_SAFETY_ANALYSIS \
  DMR_THREAD_ANNOTATION(no_thread_safety_analysis)
/// Function returns a reference to the named capability.
#define DMR_RETURN_CAPABILITY(x) DMR_THREAD_ANNOTATION(lock_returned(x))

// --- Sharding contracts (checked by tools/dmr_verify, not the compiler) ---
//
// The partitioned parallel DES engine (ROADMAP item 1) splits engine
// state across shard threads. These macros declare, on each data member
// of the src/des/ engine classes, which side of that split it lives on;
// they expand to nothing on every compiler and are consumed textually
// by dmr_verify's shard-safety rules:
//  - every data member in src/des/ must carry exactly one of the two
//    state annotations (rule shard-annotation);
//  - DMR_SHARD_SHARED members may only be touched inside functions
//    marked DMR_CHANNEL_API, plus the declaring class's constructors
//    and destructors (rule shard-channel-api);
//  - DMR_SHARD_LOCAL members must not be referenced outside their
//    declaring unit (same rule).

/// Member is owned by a single shard thread; no cross-shard access.
#define DMR_SHARD_LOCAL
/// Member crosses shards; access only through DMR_CHANNEL_API functions.
#define DMR_SHARD_SHARED
/// Function is a declared cross-shard channel endpoint and may touch
/// DMR_SHARD_SHARED members.
#define DMR_CHANNEL_API

namespace dmr {

/// std::mutex with the capability attributes Clang's analysis needs.
/// Prefer MutexLock for scoped sections; lock()/unlock() exist for the
/// condition-variable protocol and annotated manual sections.
class DMR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DMR_ACQUIRE() { m_.lock(); }
  void unlock() DMR_RELEASE() { m_.unlock(); }
  bool try_lock() DMR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock for dmr::Mutex — std::lock_guard with the
/// scoped-capability attribute (acquires in the constructor, releases
/// in the destructor; no unlock/relock surface).
class DMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) DMR_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() DMR_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable for dmr::Mutex. wait() demands the caller hold
/// the mutex (checked at compile time under Clang); internally it
/// re-enters the wrapped std::mutex through a std::unique_lock that
/// adopts and releases without destroying ownership.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; `m` must be held (it is released while
  /// waiting and re-held on return, like std::condition_variable).
  /// Deliberately no predicate overload: callers loop
  /// `while (!cond) cv_.wait(mutex_);` so the condition's guarded reads
  /// stay inside the caller, where the analysis can see the lock —
  /// a predicate lambda would be analyzed as a separate function.
  void wait(Mutex& m) DMR_REQUIRES(m) {
    std::unique_lock<std::mutex> lk(m.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scoped lock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dmr

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sched/adaptive.hpp"
#include "sched/slot_scheduler.hpp"

namespace dmr::sched {
namespace {

TEST(SlotScheduler, SlotsPartitionTheIteration) {
  const double T = 230.0;  // the paper's measured Kraken iteration
  const int nodes = 192;   // 2304 cores / 12
  for (int id = 0; id < nodes; ++id) {
    SlotScheduler s(T, nodes, id);
    EXPECT_DOUBLE_EQ(s.slot_width(), T / nodes);
    EXPECT_DOUBLE_EQ(s.slot_start(), id * T / nodes);
    EXPECT_LT(s.slot_start(), T);
  }
}

TEST(SlotScheduler, SlotsDoNotOverlap) {
  const double T = 100.0;
  const int nodes = 7;
  double prev_end = 0.0;
  for (int id = 0; id < nodes; ++id) {
    SlotScheduler s(T, nodes, id);
    EXPECT_NEAR(s.slot_start(), prev_end, 1e-12);
    prev_end = s.slot_start() + s.slot_width();
  }
  EXPECT_NEAR(prev_end, T, 1e-12);
}

TEST(SlotScheduler, WaitTimeBeforeAndAfterSlot) {
  SlotScheduler s(100.0, 10, 3);  // slot [30, 40)
  EXPECT_DOUBLE_EQ(s.wait_time(0.0), 30.0);
  EXPECT_DOUBLE_EQ(s.wait_time(29.0), 1.0);
  EXPECT_DOUBLE_EQ(s.wait_time(30.0), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_time(55.0), 0.0);
}

TEST(SlotScheduler, NodeZeroNeverWaits) {
  SlotScheduler s(50.0, 8, 0);
  EXPECT_DOUBLE_EQ(s.wait_time(0.0), 0.0);
}

TEST(SlotScheduler, SingleNodeOwnsWholeIteration) {
  SlotScheduler s(42.0, 1, 0);
  EXPECT_DOUBLE_EQ(s.slot_width(), 42.0);
  EXPECT_DOUBLE_EQ(s.wait_time(0.0), 0.0);
}

TEST(SlotScheduler, EstimateUpdateEwma) {
  SlotScheduler s(100.0, 4, 1);
  s.update_estimate(200.0);
  EXPECT_NEAR(s.estimated_iteration(), 0.7 * 100 + 0.3 * 200, 1e-12);
  s.update_estimate(0.0);  // bogus measurements are ignored
  EXPECT_NEAR(s.estimated_iteration(), 130.0, 1e-12);
  // Slots follow the refined estimate.
  EXPECT_NEAR(s.slot_start(), 130.0 / 4, 1e-12);
}

TEST(SlotScheduler, ConvergesToStableMeasurement) {
  SlotScheduler s(10.0, 2, 0);
  for (int i = 0; i < 60; ++i) s.update_estimate(230.0);
  EXPECT_NEAR(s.estimated_iteration(), 230.0, 0.01);
}

// ------------------------------------------------------------ edge cases

TEST(SlotScheduler, ZeroEstimateCollapsesSlots) {
  // Before the first measured iteration the estimate can be 0: every
  // slot collapses to width 0 at offset 0 and nobody waits.
  SlotScheduler s(0.0, 8, 5);
  EXPECT_DOUBLE_EQ(s.slot_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.slot_start(), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_time(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_time(17.0), 0.0);
}

TEST(SlotScheduler, NegativeEstimateClampsToZero) {
  SlotScheduler s(-42.0, 4, 2);
  EXPECT_DOUBLE_EQ(s.estimated_iteration(), 0.0);
  EXPECT_DOUBLE_EQ(s.slot_width(), 0.0);
  EXPECT_DOUBLE_EQ(s.wait_time(0.0), 0.0);
}

TEST(SlotScheduler, FirstPositiveMeasurementReplacesEmptyEstimate) {
  // A 0 initial estimate is "unknown", not a datapoint: the first real
  // measurement replaces it outright instead of being EWMA-diluted.
  SlotScheduler s(0.0, 4, 1);
  s.update_estimate(120.0);
  EXPECT_DOUBLE_EQ(s.estimated_iteration(), 120.0);
  EXPECT_DOUBLE_EQ(s.slot_start(), 120.0 / 4);
  s.update_estimate(-3.0);  // still ignored
  EXPECT_DOUBLE_EQ(s.estimated_iteration(), 120.0);
}

TEST(SlotScheduler, MoreWritersThanSlotsShareRoundRobin) {
  // 6 writers over 4 slots: writers 4 and 5 wrap onto slots 0 and 1.
  const double T = 100.0;
  for (int writer = 0; writer < 6; ++writer) {
    SlotScheduler s(T, 4, writer);
    EXPECT_EQ(s.slot_id(), writer % 4) << "writer " << writer;
    EXPECT_DOUBLE_EQ(s.slot_start(), (writer % 4) * T / 4);
  }
}

TEST(SlotScheduler, NegativeWriterIdWrapsIntoRange) {
  SlotScheduler s(100.0, 4, -1);
  EXPECT_EQ(s.slot_id(), 3);
  EXPECT_DOUBLE_EQ(s.slot_start(), 75.0);
}

TEST(SlotScheduler, NonPositiveSlotCountBecomesSingleSlot) {
  SlotScheduler zero(100.0, 0, 7);
  EXPECT_EQ(zero.num_slots(), 1);
  EXPECT_DOUBLE_EQ(zero.slot_width(), 100.0);
  EXPECT_DOUBLE_EQ(zero.slot_start(), 0.0);
  SlotScheduler negative(100.0, -3, 2);
  EXPECT_EQ(negative.num_slots(), 1);
  EXPECT_DOUBLE_EQ(negative.wait_time(0.0), 0.0);
}

// ---------------------------------------------- configurable EMA alpha

TEST(SlotScheduler, AlphaIsConfigurable) {
  SlotScheduler s(100.0, 4, 1, 0.5);
  EXPECT_DOUBLE_EQ(s.alpha(), 0.5);
  s.update_estimate(200.0);
  EXPECT_NEAR(s.estimated_iteration(), 0.5 * 100 + 0.5 * 200, 1e-12);
}

TEST(SlotScheduler, ClampAlphaRejectsInvalidValues) {
  EXPECT_DOUBLE_EQ(clamp_alpha(0.3), 0.3);
  EXPECT_DOUBLE_EQ(clamp_alpha(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp_alpha(2.5), 1.0);       // above range: capped
  EXPECT_DOUBLE_EQ(clamp_alpha(0.0), kDefaultAlpha);
  EXPECT_DOUBLE_EQ(clamp_alpha(-1.0), kDefaultAlpha);
  EXPECT_DOUBLE_EQ(clamp_alpha(std::nan("")), kDefaultAlpha);
}

// ------------------------------------------- AdaptiveSlotController

SlotObservation obs(int writer, int phase, double write_s,
                    std::uint64_t bytes) {
  SlotObservation o;
  o.writer = writer;
  o.phase = phase;
  o.write_seconds = write_s;
  o.bytes = bytes;
  return o;
}

TEST(AdaptiveSlotController, StartsWithTheStaticUniformPlan) {
  const double T = 100.0;
  const int n = 4;
  AdaptiveSlotController c(T, n);
  const SlotScheduler uniform(T, n, 0);
  for (int w = 0; w < n; ++w) {
    EXPECT_DOUBLE_EQ(c.width(w), uniform.slot_width());
    EXPECT_DOUBLE_EQ(c.offset(w), uniform.slot_width() * w);
  }
  EXPECT_EQ(c.phases_completed(), 0);
  EXPECT_EQ(c.active_slots(), n);
}

TEST(AdaptiveSlotController, RetunesOnceTheWholeCohortReports) {
  AdaptiveSlotController c(100.0, 3);
  c.observe(obs(0, 0, 1.0, 1000), 10.0);
  c.observe(obs(1, 0, 1.0, 1000), 11.0);
  EXPECT_EQ(c.phases_completed(), 0);  // cohort incomplete
  c.observe(obs(2, 0, 1.0, 1000), 12.0);
  EXPECT_EQ(c.phases_completed(), 1);
}

TEST(AdaptiveSlotController, WidthsFollowObservedLoad) {
  // Writer 1 carries 8x the storage time of the others: after one
  // cohort its slot must be the widest, and offsets must stay a
  // non-overlapping prefix sum within the horizon.
  const double T = 100.0;
  const int n = 4;
  AdaptiveSlotController c(T, n);
  for (int w = 0; w < n; ++w) {
    c.observe(obs(w, 0, w == 1 ? 8.0 : 1.0, 1 * MiB), 50.0);
  }
  ASSERT_EQ(c.phases_completed(), 1);
  for (int w = 0; w < n; ++w) {
    if (w == 1) continue;
    EXPECT_GT(c.width(1), c.width(w));
  }
  double cursor = 0.0;
  for (int w = 0; w < n; ++w) {
    EXPECT_DOUBLE_EQ(c.offset(w), cursor);
    cursor += c.width(w);
  }
  EXPECT_LE(cursor, c.estimated_interval() + 1e-9);
}

TEST(AdaptiveSlotController, DriftedWritersRetunePerPhaseCohort) {
  // A light writer finishes phases 0..2 before the heavy one reports
  // phase 0 — the per-phase buckets must still complete every cohort.
  AdaptiveSlotController c(10.0, 2);
  c.observe(obs(0, 0, 0.1, 100), 1.0);
  c.observe(obs(0, 1, 0.1, 100), 2.0);
  c.observe(obs(0, 2, 0.1, 100), 3.0);
  EXPECT_EQ(c.phases_completed(), 0);
  c.observe(obs(1, 0, 5.0, 100), 4.0);
  EXPECT_EQ(c.phases_completed(), 1);
  c.observe(obs(1, 1, 5.0, 100), 5.0);
  c.observe(obs(1, 2, 5.0, 100), 6.0);
  EXPECT_EQ(c.phases_completed(), 3);
}

TEST(AdaptiveSlotController, PlanIsCappedAtTheHorizon) {
  // Total observed load (40 s + jitter margin) dwarfs the 10 s
  // interval: the plan compresses to proportional sharing, never
  // offsets beyond the horizon.
  const double T = 10.0;
  const int n = 4;
  AdaptiveSlotController c(T, n);
  for (int w = 0; w < n; ++w) c.observe(obs(w, 0, 10.0, 1 * MiB), 5.0);
  ASSERT_EQ(c.phases_completed(), 1);
  double total = 0.0;
  for (int w = 0; w < n; ++w) {
    EXPECT_LT(c.offset(w), c.estimated_interval());
    total += c.width(w);
  }
  EXPECT_NEAR(total, c.estimated_interval(), 1e-9);
}

TEST(AdaptiveSlotController, IdleWritersReleaseTheirSlots) {
  // Writers 2 and 3 wrote nothing this phase (bursty checkpoint): they
  // collapse to zero-width slots and the busy writers share the plan.
  AdaptiveSlotController c(100.0, 4);
  c.observe(obs(0, 0, 2.0, 1 * MiB), 10.0);
  c.observe(obs(1, 0, 2.0, 1 * MiB), 10.0);
  c.observe(obs(2, 0, 0.0, 0), 10.0);
  c.observe(obs(3, 0, 0.0, 0), 10.0);
  ASSERT_EQ(c.phases_completed(), 1);
  EXPECT_EQ(c.active_slots(), 2);
  EXPECT_GT(c.width(0), 0.0);
  EXPECT_GT(c.width(1), 0.0);
  EXPECT_DOUBLE_EQ(c.width(2), 0.0);
  EXPECT_DOUBLE_EQ(c.width(3), 0.0);
}

TEST(AdaptiveSlotController, AllIdlePhaseFallsBackToUniform) {
  AdaptiveSlotController c(100.0, 4);
  for (int w = 0; w < 4; ++w) c.observe(obs(w, 0, 0.0, 0), 10.0);
  ASSERT_EQ(c.phases_completed(), 1);
  EXPECT_EQ(c.active_slots(), 4);
  for (int w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(c.width(w), c.estimated_interval() / 4);
  }
}

TEST(AdaptiveSlotController, PlanIsADeterministicFunctionOfHistory) {
  // Identical observation sequences yield bit-identical plans — the
  // property the async determinism suite relies on end to end.
  const auto feed = [](AdaptiveSlotController& c) {
    for (int phase = 0; phase < 3; ++phase) {
      for (int w = 0; w < 3; ++w) {
        c.observe(obs(w, phase, 1.0 + w * 0.5 + phase * 0.1,
                      (w + 1) * 1000), 10.0 * (phase + 1));
      }
    }
  };
  AdaptiveSlotController a(50.0, 3);
  AdaptiveSlotController b(50.0, 3);
  feed(a);
  feed(b);
  ASSERT_EQ(a.phases_completed(), b.phases_completed());
  for (int w = 0; w < 3; ++w) {
    EXPECT_DOUBLE_EQ(a.offset(w), b.offset(w));
    EXPECT_DOUBLE_EQ(a.width(w), b.width(w));
  }
}

TEST(AdaptiveSlotController, DuplicateReportsDoNotDoubleCount) {
  AdaptiveSlotController c(100.0, 2);
  c.observe(obs(0, 0, 1.0, 100), 1.0);
  c.observe(obs(0, 0, 2.0, 100), 2.0);  // overwrite, not a new writer
  EXPECT_EQ(c.phases_completed(), 0);
  c.observe(obs(1, 0, 1.0, 100), 3.0);
  EXPECT_EQ(c.phases_completed(), 1);
}

TEST(AdaptiveSlotController, OutOfRangeWritersAreIgnoredOrWrapped) {
  AdaptiveSlotController c(100.0, 2);
  c.observe(obs(-1, 0, 1.0, 100), 1.0);  // dropped
  c.observe(obs(7, 0, 1.0, 100), 1.0);   // dropped
  EXPECT_EQ(c.phases_completed(), 0);
  // Queries wrap like the static scheduler's writer ids.
  EXPECT_DOUBLE_EQ(c.offset(2), c.offset(0));
  EXPECT_DOUBLE_EQ(c.offset(-1), c.offset(1));
}

}  // namespace
}  // namespace dmr::sched

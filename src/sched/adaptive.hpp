// Trace-fed adaptive slot scheduling (extends §IV-D's static scheme).
//
// The static SlotScheduler divides a *configured* iteration estimate
// into N equal slots. That is exactly the paper's first-run scheme, and
// it degrades under load imbalance: a writer holding 8x the average
// payload overflows its uniform slot and queues behind its neighbours
// at the shared file system, while the small writers' slots sit mostly
// idle ("CMSSW Scaling Limits on Many-Core Machines" characterizes the
// same contention shape).
//
// AdaptiveSlotController closes the loop. Each dedicated writer reports
// one SlotObservation per write phase — the Schedule-stage queue wait
// and the Storage-stage service time measured by the trace layer — and
// once a phase's whole cohort has reported (phases are tracked
// independently, because writers drift: a light writer can be several
// phases ahead of a heavy one), the controller retunes:
//
//   - the iteration-interval estimate (EMA over measured phase-to-phase
//     completion gaps, same smoothing as SlotScheduler::update_estimate);
//   - per-writer slot *widths*, proportional to each writer's EMA of
//     observed storage seconds, inflated by the cohort's jitter margin
//     (JitterSummary spread/mean) so a noisy writer gets headroom; the
//     whole plan is capped at the schedule horizon (an overloaded
//     cohort degrades to proportional sharing of the interval, never to
//     offsets beyond it);
//   - the slot *count*: writers that wrote nothing last phase collapse
//     to zero-width slots and stop consuming schedule horizon (bursty
//     checkpoint phases leave the horizon to the writers that need it).
//
// Offsets are prefix sums of the widths in writer order, so the plan is
// a deterministic function of the observation history — identical seeds
// yield identical schedules.
//
// Thread-safety: plain value semantics like JitterReport — the
// controller lives on one DES engine thread; no internal locking.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "sched/slot_scheduler.hpp"
#include "trace/jitter_report.hpp"

namespace dmr::sched {

/// One writer's measurements from one completed write phase.
struct SlotObservation {
  int writer = 0;
  /// Write phase the measurements belong to. Writers of different load
  /// finish different phases at different times; the controller retunes
  /// per phase cohort, not per arrival order.
  int phase = 0;
  /// Seconds the request waited in the Schedule stage (slot delay plus
  /// coordination-token queueing) — the trace layer's queue-wait span.
  double schedule_wait_seconds = 0.0;
  /// Storage-stage service seconds, including file-system queueing.
  double write_seconds = 0.0;
  std::uint64_t bytes = 0;
};

class AdaptiveSlotController {
 public:
  /// `initial_interval` seeds the horizon exactly like the static
  /// scheduler's configured estimate, so phase 0 (no observations yet)
  /// reproduces the uniform static plan.
  AdaptiveSlotController(SimTime initial_interval, int num_writers,
                         double alpha = kDefaultAlpha);

  /// Reports one writer's phase measurements at simulation time `now`.
  /// The controller retunes automatically once every writer has
  /// reported for the observation's phase.
  void observe(const SlotObservation& obs, SimTime now);

  /// Start of `writer`'s slot as an offset from the phase start.
  SimTime offset(int writer) const;
  /// Width of `writer`'s slot in the current plan.
  SimTime width(int writer) const;

  int num_writers() const { return num_writers_; }
  double alpha() const { return alpha_; }
  /// Completed retunes (phases for which the whole cohort reported).
  int phases_completed() const { return phases_completed_; }
  /// Number of non-empty slots in the current plan.
  int active_slots() const { return active_slots_; }
  /// Interval estimate feeding the schedule horizon.
  SimTime estimated_interval() const { return interval_.estimated_iteration(); }
  /// Distribution of the cohort's write seconds at the last retune.
  const trace::JitterSummary& last_summary() const { return last_summary_; }

 private:
  /// In-flight observations of one write phase, by writer.
  struct PhaseBucket {
    std::vector<SlotObservation> obs;
    std::vector<bool> reported;
    int count = 0;
  };

  void retune(const PhaseBucket& bucket, SimTime now);

  int num_writers_;
  double alpha_;
  SlotScheduler interval_;  // slot 0 of 1: reused purely as interval EMA
  std::vector<double> load_ema_;       // per-writer EMA of write seconds
  std::vector<bool> wrote_last_phase_;  // writer produced bytes last phase
  /// Incomplete phase cohorts. Bounded by how far writers drift apart
  /// (at most the run's phase count); completed buckets are erased.
  std::map<int, PhaseBucket> pending_;
  SimTime last_phase_end_ = -1.0;
  int phases_completed_ = 0;
  int active_slots_;
  std::vector<SimTime> offsets_;
  std::vector<SimTime> widths_;
  trace::JitterSummary last_summary_;
};

}  // namespace dmr::sched

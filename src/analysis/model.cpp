#include "analysis/model.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace dmr::analysis {

namespace {

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

/// Collects declarator names that follow `type_tok<...>`: skips the
/// balanced template-argument group, then declarator decoration
/// (`[]`, stray `>`, `*`, `&`), reads an identifier, and accepts it only
/// when what follows could end a declarator (`; { = , ) [` or a DMR_*
/// annotation macro). Rejects uses in casts, `using` aliases and nested
/// template arguments, where no identifier sits in that slot.
void collect_template_decls(const std::string& s, const std::string& type_tok,
                            std::set<std::string>& out) {
  for (std::size_t pos = s.find(type_tok); pos != std::string::npos;
       pos = s.find(type_tok, pos + 1)) {
    if (pos > 0 && is_ident_char(s[pos - 1])) continue;
    std::size_t i = pos + type_tok.size();
    if (i < s.size() && is_ident_char(s[i])) continue;  // longer identifier
    while (i < s.size() && is_space(s[i])) ++i;
    if (i >= s.size() || s[i] != '<') continue;
    const std::size_t after = match_forward(s, i, '<', '>');
    if (after == std::string::npos) continue;
    std::size_t j = after;
    while (j < s.size()) {
      if (is_space(s[j])) { ++j; continue; }
      if (s[j] == '[') {
        const std::size_t k = match_forward(s, j, '[', ']');
        if (k == std::string::npos) break;
        j = k;
        continue;
      }
      if (s[j] == '>' || s[j] == '&' || s[j] == '*') { ++j; continue; }
      break;
    }
    const std::size_t name_b = j;
    while (j < s.size() && is_ident_char(s[j])) ++j;
    if (j == name_b) continue;
    const std::string name = s.substr(name_b, j - name_b);
    if (name == "const" || name == "constexpr" || name == "noexcept" ||
        name == "final" || name == "override")
      continue;
    std::size_t k = j;
    while (k < s.size() && is_space(s[k])) ++k;
    const char nx = k < s.size() ? s[k] : ';';
    const bool annotated = nx == 'D' && s.compare(k, 4, "DMR_") == 0;
    if (nx == ';' || nx == '{' || nx == '=' || nx == ',' || nx == ')' ||
        nx == '[' || annotated)
      out.insert(name);
  }
}

const char* kUnorderedTypes[] = {
    "std::unordered_map", "std::unordered_set", "std::unordered_multimap",
    "std::unordered_multiset"};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

/// Cuts a declaration segment at a bit-field colon (a ':' that is not
/// part of '::').
std::string cut_bitfield(const std::string& s) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != ':') continue;
    const bool prev = i > 0 && s[i - 1] == ':';
    const bool next = i + 1 < s.size() && s[i + 1] == ':';
    if (prev || next) { ++i; continue; }
    return s.substr(0, i);
  }
  return s;
}

/// Extracts one MemberDecl from a class-scope declaration segment, or
/// returns false when the segment is not a data member.
bool member_from_segment(const std::string& seg, MemberDecl& out) {
  static const std::regex kAccess("\\b(public|private|protected)\\s*:(?!:)");
  static const std::regex kNonMember(
      "\\b(using|typedef|friend|static|constexpr|template|enum|class|struct|"
      "union|operator)\\b");
  std::string t = trim(std::regex_replace(seg, kAccess, " "));
  if (t.empty()) return false;
  if (std::regex_search(t, kNonMember)) return false;
  std::string flat = strip_template_args(t);
  if (flat.find('(') != std::string::npos) return false;  // function decl
  if (flat.find("DMR_SHARD_SHARED") != std::string::npos)
    out.shard = MemberDecl::Shard::kShared;
  else if (flat.find("DMR_SHARD_LOCAL") != std::string::npos)
    out.shard = MemberDecl::Shard::kLocal;
  static const std::regex kMacro("\\bDMR_\\w+\\b");
  flat = std::regex_replace(flat, kMacro, " ");
  if (const std::size_t eq = flat.find('='); eq != std::string::npos)
    flat = flat.substr(0, eq);
  flat = cut_bitfield(flat);
  if (const std::size_t br = flat.find('['); br != std::string::npos)
    flat = flat.substr(0, br);
  for (char& c : flat)
    if (c == '*' || c == '&') c = ' ';
  std::vector<std::string> toks;
  std::string cur;
  for (char c : flat) {
    if (is_ident_char(c) || c == ':') cur += c;
    else if (!cur.empty()) { toks.push_back(cur); cur.clear(); }
  }
  if (!cur.empty()) toks.push_back(cur);
  if (toks.size() < 2) return false;  // need at least `Type name`
  const std::string& name = toks.back();
  if (name.find(':') != std::string::npos) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
        name[0] == '_'))
    return false;
  out.name = name;
  return true;
}

void parse_sync_table(TreeModel& m) {
  if (const SourceFile* obs = m.find("src/shm/observer.hpp")) {
    m.sync.kinds_rel = obs->rel;
    const std::string& s = obs->stripped;
    const std::size_t b = s.find("enum class Kind");
    if (b != std::string::npos) {
      const std::size_t open = s.find('{', b);
      const std::size_t close =
          open == std::string::npos ? open : match_forward(s, open, '{', '}');
      if (open != std::string::npos && close != std::string::npos) {
        const std::string body = s.substr(open, close - open);
        static const std::regex kKind("\\b(k[A-Z]\\w*)");
        for (std::sregex_iterator it(body.begin(), body.end(), kKind), end;
             it != end; ++it)
          if (std::find(m.sync.kinds.begin(), m.sync.kinds.end(),
                        (*it)[1].str()) == m.sync.kinds.end())
            m.sync.kinds.push_back((*it)[1].str());
      }
    }
  }
  const SourceFile* tbl = m.find("src/shm/sync_channels.hpp");
  if (tbl == nullptr) return;
  m.sync.table_rel = tbl->rel;
  const std::string& s = tbl->stripped;
  auto block = [&](const char* define) -> std::string {
    const std::size_t b = s.find(define);
    if (b == std::string::npos) return "";
    std::size_t e = s.find("#define", b + 1);
    if (e == std::string::npos) e = s.size();
    return s.substr(b, e - b);
  };
  const std::string sync_block = block("#define DMR_SYNC_POINT_CHANNELS");
  static const std::regex kPair(
      "X\\(\\s*([A-Za-z_]\\w*)\\s*,\\s*([A-Za-z_]\\w*)");
  for (std::sregex_iterator it(sync_block.begin(), sync_block.end(), kPair),
       end;
       it != end; ++it)
    m.sync.kind_channels[(*it)[1].str()] = (*it)[2].str();
  const std::string atomic_block = block("#define DMR_ATOMIC_CHANNELS");
  static const std::regex kOne("X\\(\\s*([A-Za-z_]\\w*)");
  for (std::sregex_iterator it(atomic_block.begin(), atomic_block.end(), kOne),
       end;
       it != end; ++it)
    m.sync.atomic_channels.insert((*it)[1].str());
}

}  // namespace

bool SyncTable::has_channel(const std::string& name) const {
  if (atomic_channels.count(name) != 0) return true;
  for (const auto& [kind, channel] : kind_channels)
    if (channel == name) return true;
  return false;
}

const SourceFile* TreeModel::find(const std::string& rel_suffix) const {
  for (const SourceFile& f : files) {
    if (f.rel == rel_suffix) return &f;
    if (f.rel.size() > rel_suffix.size() &&
        f.rel.compare(f.rel.size() - rel_suffix.size(), rel_suffix.size(),
                      rel_suffix) == 0 &&
        f.rel[f.rel.size() - rel_suffix.size() - 1] == '/')
      return &f;
  }
  return nullptr;
}

std::set<std::string> atomic_decl_names(const std::string& stripped) {
  std::set<std::string> names;
  collect_template_decls(stripped, "std::atomic", names);
  return names;
}

std::set<std::string> unordered_decl_names(const std::string& stripped) {
  std::set<std::string> names;
  for (const char* tok : kUnorderedTypes)
    collect_template_decls(stripped, tok, names);
  return names;
}

std::vector<MemberDecl> parse_members(const SourceFile& file) {
  const std::string& s = file.stripped;
  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
    std::string name;
    bool nested = false;
  };
  std::vector<Scope> stack;
  std::vector<MemberDecl> out;
  std::string seg;
  std::size_t seg_off = 0;
  static const std::regex kClassRe(
      "\\b(?:class|struct)\\s+(?:DMR_\\w+\\s*(?:\\([^)]*\\))?\\s*)?"
      "([A-Za-z_]\\w*)");
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '{') {
      Scope sc;
      std::smatch m;
      const bool in_class = !stack.empty() && stack.back().kind == Scope::kClass;
      if (seg.find("enum") != std::string::npos) {
        sc.kind = Scope::kOther;
      } else if (std::regex_search(seg, m, kClassRe)) {
        sc.kind = Scope::kClass;
        sc.name = m[1].str();
        for (const Scope& e : stack)
          if (e.kind == Scope::kClass || e.kind == Scope::kFunction)
            sc.nested = true;
      } else if (seg.find("class") != std::string::npos ||
                 seg.find("struct") != std::string::npos ||
                 seg.find("union") != std::string::npos) {
        sc.kind = Scope::kOther;  // anonymous aggregate
      } else if (looks_like_function_header(seg)) {
        sc.kind = Scope::kFunction;
      } else if (seg.find("namespace") != std::string::npos) {
        sc.kind = Scope::kNamespace;
      } else if (in_class) {
        // Brace initializer of a member (`std::uint64_t seq_{0};`):
        // skip it so the declarator stays in the current segment.
        const std::size_t k = match_forward(s, i, '{', '}');
        if (k != std::string::npos) { i = k - 1; continue; }
        sc.kind = Scope::kOther;
      } else {
        sc.kind = Scope::kOther;
      }
      stack.push_back(sc);
      seg.clear();
      seg_off = i + 1;
    } else if (c == '}') {
      if (!stack.empty()) stack.pop_back();
      seg.clear();
      seg_off = i + 1;
    } else if (c == ';') {
      if (!stack.empty() && stack.back().kind == Scope::kClass) {
        MemberDecl d;
        if (member_from_segment(seg, d)) {
          d.cls = stack.back().name;
          d.file = file.rel;
          d.nested = stack.back().nested;
          std::size_t b = seg_off;
          while (b < i && is_space(s[b])) ++b;
          d.line = line_of_offset(s, b);
          out.push_back(d);
        }
      }
      seg.clear();
      seg_off = i + 1;
    } else {
      seg += c;
    }
  }
  return out;
}

TreeModel build_model(std::vector<SourceFile> files) {
  TreeModel m;
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });
  m.files = std::move(files);
  for (std::size_t i = 0; i < m.files.size(); ++i) {
    const SourceFile& f = m.files[i];
    m.units[f.unit].push_back(i);
    for (const std::string& n : atomic_decl_names(f.stripped))
      m.unit_atomics[f.unit].insert(n);
    for (const std::string& n : unordered_decl_names(f.stripped))
      m.unit_unordered[f.unit].insert(n);
    if (f.is_header)
      for (MemberDecl& d : parse_members(f))
        m.unit_members[f.unit].push_back(std::move(d));
    for (std::size_t j = 0; j < f.functions.size(); ++j) {
      m.fn_by_tail[f.functions[j].tail].push_back(m.all_fns.size());
      m.all_fns.emplace_back(i, j);
    }
  }
  parse_sync_table(m);
  return m;
}

}  // namespace dmr::analysis

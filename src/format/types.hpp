// Element types and array layouts for self-describing datasets.
//
// A Layout is the paper's ⟨type, dimensions, extents⟩ description of a
// variable; it usually comes from the XML configuration rather than from
// the data path (§III-B "Configuration file").
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace dmr::format {

enum class DataType : std::uint8_t {
  kInt8 = 0,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat32,
  kFloat64,
};

/// Size of one element in bytes.
std::size_t datatype_size(DataType t);

/// Canonical name ("float32", "int64", ...), used by the XML config.
std::string datatype_name(DataType t);

/// Parses a type name; returns false on unknown names.
bool parse_datatype(const std::string& name, DataType& out);

/// N-dimensional dense array layout.
struct Layout {
  DataType type = DataType::kFloat32;
  std::vector<std::uint64_t> dims;

  std::uint64_t element_count() const {
    std::uint64_t n = 1;
    for (auto d : dims) n *= d;
    return dims.empty() ? 0 : n;
  }
  Bytes byte_size() const {
    return element_count() * datatype_size(type);
  }
  bool operator==(const Layout&) const = default;
};

}  // namespace dmr::format

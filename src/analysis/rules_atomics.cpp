// Atomics-discipline rules. Implicit seq_cst is banned not because
// seq_cst is wrong but because it is *unstated*: every fence the
// protocol relies on must be visible at the call site, and every
// relaxed op must carry an allowlist justification. In src/shm the
// acquire/release sites must additionally name a channel from
// src/shm/sync_channels.hpp — the same table mc::HbRaceDetector links
// against — so the static model and the dynamic race detector see the
// same synchronization structure.
#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"

namespace dmr::analysis {

namespace {

/// Member operations that take a memory_order argument.
const char* kOrderOps[] = {"load",
                           "store",
                           "exchange",
                           "fetch_add",
                           "fetch_sub",
                           "fetch_and",
                           "fetch_or",
                           "fetch_xor",
                           "compare_exchange_weak",
                           "compare_exchange_strong",
                           "test_and_set",
                           "clear",
                           "wait"};

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

bool is_order_op(const std::string& name) {
  for (const char* op : kOrderOps)
    if (name == op) return true;
  return false;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && is_space(s[i])) ++i;
  return i;
}

char prev_nonspace(const std::string& s, std::size_t pos, std::size_t* at) {
  while (pos > 0) {
    --pos;
    if (!is_space(s[pos])) {
      if (at != nullptr) *at = pos;
      return s[pos];
    }
  }
  if (at != nullptr) *at = 0;
  return '\0';
}

/// True when `name` is redeclared as a non-atomic local/parameter
/// somewhere in the file (`const Bytes head = p.head.load(...)`), in
/// which case bare uses of the shadow are fine.
bool shadowed_in_file(const SourceFile& f, const std::string& name) {
  const std::regex decl("[A-Za-z_][\\w:<>]*[\\s&*]+" + name +
                        "\\s*[=:]([^=:]|$)");
  for (std::sregex_iterator it(f.stripped.begin(), f.stripped.end(), decl),
       end;
       it != end; ++it) {
    const int line = line_of_offset(
        f.stripped, static_cast<std::size_t>(it->position()));
    const std::string& raw =
        static_cast<std::size_t>(line - 1) < f.raw_lines.size()
            ? f.raw_lines[static_cast<std::size_t>(line - 1)]
            : std::string();
    if (raw.find("atomic") == std::string::npos) return true;
  }
  return false;
}

void scan_atomic_uses(const SourceFile& f, const std::set<std::string>& names,
                      std::vector<Finding>& out) {
  const std::string& s = f.stripped;
  for (const std::string& name : names) {
    bool shadow_checked = false;
    bool shadowed = false;
    for (std::size_t pos = s.find(name); pos != std::string::npos;
         pos = s.find(name, pos + 1)) {
      if (pos > 0 && is_ident_char(s[pos - 1])) continue;
      const std::size_t end = pos + name.size();
      if (end < s.size() && is_ident_char(s[end])) continue;
      const int line = line_of_offset(s, pos);
      // The declaration itself: check the stripped line (comments may
      // mention "atomic" next to a genuine use).
      const std::size_t lb = s.rfind('\n', pos) + 1;  // npos+1 == 0
      std::size_t le = s.find('\n', pos);
      if (le == std::string::npos) le = s.size();
      if (s.substr(lb, le - lb).find("atomic") != std::string::npos) continue;
      std::size_t prev_at = 0;
      const char prev = prev_nonspace(s, pos, &prev_at);
      if (prev == ':' ) continue;  // qualified something::name
      // Step over subscripts: counts_[i].fetch_add(...).
      std::size_t i = skip_ws(s, end);
      while (i < s.size() && s[i] == '[') {
        const std::size_t k = match_forward(s, i, '[', ']');
        if (k == std::string::npos) break;
        i = skip_ws(s, k);
      }
      const bool arrow = i + 1 < s.size() && s[i] == '-' && s[i + 1] == '>';
      if ((i < s.size() && s[i] == '.') || arrow) {
        std::size_t mb = skip_ws(s, i + (arrow ? 2 : 1));
        std::size_t me = mb;
        while (me < s.size() && is_ident_char(s[me])) ++me;
        const std::string member = s.substr(mb, me - mb);
        const std::size_t call = skip_ws(s, me);
        if (is_order_op(member) && call < s.size() && s[call] == '(') {
          const std::size_t argend = match_forward(s, call, '(', ')');
          const std::string args =
              argend == std::string::npos
                  ? std::string()
                  : s.substr(call + 1, argend - call - 2);
          if (args.find("memory_order") == std::string::npos) {
            out.push_back(
                {"atomic-implicit-order", f.rel, line, name,
                 "'" + name + "." + member +
                     "' without an explicit memory_order (implicit "
                     "seq_cst) — state the fence the protocol needs"});
          } else if (args.find("relaxed") != std::string::npos) {
            out.push_back(
                {"atomic-relaxed-justify", f.rel, line, name,
                 "relaxed ordering on '" + name + "." + member +
                     "' — requires an allowlist justification"});
          }
          continue;
        }
        continue;  // some other member / non-ordering op
      }
      // Bare use: conversion or assignment through the implicit
      // seq_cst operators.
      if (prev == '&') continue;       // address-of (passed to an API)
      if (prev == '~') continue;       // destructor name
      if (i < s.size() && s[i] == '(') continue;  // ctor-init / call
      if (prev == '.' || (prev == '>' && prev_at > 0 && s[prev_at - 1] == '-')) {
        // Member access through an object: without type information the
        // object may be an unrelated struct whose field shares the
        // atomic's name (TraceEvent::name vs Slot::name in src/trace),
        // so only `this->name` is trusted to denote the atomic.
        std::size_t oe = prev == '>' ? prev_at - 1 : prev_at;
        while (oe > 0 && is_space(s[oe - 1])) --oe;
        std::size_t ob = oe;
        while (ob > 0 && is_ident_char(s[ob - 1])) --ob;
        if (s.substr(ob, oe - ob) != "this") continue;
      } else {
        if (!shadow_checked) {
          shadowed = shadowed_in_file(f, name);
          shadow_checked = true;
        }
        if (shadowed) continue;
      }
      out.push_back(
          {"atomic-implicit-order", f.rel, line, name,
           "bare use of std::atomic '" + name +
               "' (implicit seq_cst conversion/assignment) — use "
               ".load/.store with an explicit memory_order"});
    }
  }
}

// --- sync-channel -------------------------------------------------------

struct ChannelSides {
  int acquire = 0;
  int release = 0;
};

/// Looks for a `sync: <channel>` annotation in the raw line of the op
/// or the two lines above it (annotations ride in comments, which the
/// stripped text no longer has).
std::string sync_annotation(const SourceFile& f, int line) {
  static const std::regex kAnnot("sync:\\s*([A-Za-z_]\\w*)");
  for (int l = line; l >= line - 2 && l >= 1; --l) {
    const std::string& raw = f.raw_lines[static_cast<std::size_t>(l - 1)];
    std::smatch m;
    if (std::regex_search(raw, m, kAnnot)) return m[1].str();
  }
  return "";
}

void rule_sync_channel(const TreeModel& m, std::vector<Finding>& out) {
  bool any_shm = false;
  std::string first_shm;
  for (const SourceFile& f : m.files)
    if (f.rel.find("src/shm/") != std::string::npos) {
      if (!any_shm) first_shm = f.rel;
      any_shm = true;
    }
  if (!any_shm) return;
  if (!m.sync.present()) {
    out.push_back({"sync-channel", first_shm, 1, "sync_channels",
                   "src/shm has acquire/release protocols but no "
                   "src/shm/sync_channels.hpp channel table"});
    return;
  }
  // Drift between the Kind enumerators and the table, both directions.
  for (const std::string& kind : m.sync.kinds)
    if (m.sync.kind_channels.count(kind) == 0)
      out.push_back({"sync-channel", m.sync.table_rel, 1, kind,
                     "SyncPoint::Kind::" + kind +
                         " (observer.hpp) has no channel entry in "
                         "DMR_SYNC_POINT_CHANNELS"});
  for (const auto& [kind, channel] : m.sync.kind_channels)
    if (std::find(m.sync.kinds.begin(), m.sync.kinds.end(), kind) ==
        m.sync.kinds.end())
      out.push_back({"sync-channel", m.sync.table_rel, 1, kind,
                     "channel '" + channel + "' names SyncPoint::Kind::" +
                         kind + " which observer.hpp does not declare"});

  std::map<std::string, ChannelSides> atomic_sides;
  std::map<std::string, ChannelSides> kind_sides;
  static const std::regex kOrder(
      "\\bmemory_order(?:_|::)(acquire|release|acq_rel)\\b");
  static const std::regex kHook(
      "on_(acquire|release)\\s*\\(\\s*\\{?\\s*(?:shm::)?SyncPoint\\s*::\\s*"
      "Kind\\s*::\\s*(k\\w+)");
  for (const SourceFile& f : m.files) {
    if (f.rel.find("src/shm/") == std::string::npos) continue;
    std::set<int> seen_lines;
    for (std::sregex_iterator
             it(f.stripped.begin(), f.stripped.end(), kOrder),
         end;
         it != end; ++it) {
      const int line = line_of_offset(
          f.stripped, static_cast<std::size_t>(it->position()));
      if (!seen_lines.insert(line).second) continue;
      const std::string order = (*it)[1].str();
      const std::string channel = sync_annotation(f, line);
      if (channel.empty()) {
        out.push_back(
            {"sync-channel", f.rel, line, order,
             "memory_order_" + order +
                 " site without a `sync: <channel>` annotation naming an "
                 "entry of src/shm/sync_channels.hpp"});
        continue;
      }
      if (!m.sync.has_channel(channel)) {
        out.push_back({"sync-channel", f.rel, line, channel,
                       "`sync: " + channel +
                           "` names a channel that is not declared in "
                           "src/shm/sync_channels.hpp"});
        continue;
      }
      ChannelSides& sides = m.sync.atomic_channels.count(channel) != 0
                                ? atomic_sides[channel]
                                : kind_sides[channel];
      if (order == "acquire" || order == "acq_rel") ++sides.acquire;
      if (order == "release" || order == "acq_rel") ++sides.release;
    }
    for (std::sregex_iterator it(f.stripped.begin(), f.stripped.end(), kHook),
         end;
         it != end; ++it) {
      const auto kit = m.sync.kind_channels.find((*it)[2].str());
      if (kit == m.sync.kind_channels.end()) continue;
      if ((*it)[1].str() == "acquire") ++kind_sides[kit->second].acquire;
      else ++kind_sides[kit->second].release;
    }
  }
  for (const auto& [kind, channel] : m.sync.kind_channels) {
    const ChannelSides sides = kind_sides[channel];
    if (sides.acquire == 0 || sides.release == 0)
      out.push_back(
          {"sync-channel", m.sync.table_rel, 1, channel,
           "sync-point channel '" + channel + "' (" + kind +
               ") lacks an " +
               (sides.acquire == 0 ? std::string("on_acquire")
                                   : std::string("on_release")) +
               " site in src/shm — dead table entry or missing "
               "instrumentation"});
  }
  for (const std::string& channel : m.sync.atomic_channels) {
    const ChannelSides sides = atomic_sides[channel];
    if (sides.acquire == 0 || sides.release == 0)
      out.push_back(
          {"sync-channel", m.sync.table_rel, 1, channel,
           "atomic channel '" + channel + "' lacks a `sync: " + channel +
               "`-annotated " +
               (sides.acquire == 0 ? std::string("acquire")
                                   : std::string("release")) +
               " site in src/shm — dead table entry or an unannotated "
               "pairing"});
  }
}

}  // namespace

void run_atomics_rules(const TreeModel& m, std::vector<Finding>& out) {
  for (const SourceFile& f : m.files) {
    const auto it = m.unit_atomics.find(f.unit);
    if (it != m.unit_atomics.end() && !it->second.empty())
      scan_atomic_uses(f, it->second, out);
  }
  rule_sync_channel(m, out);
}

}  // namespace dmr::analysis

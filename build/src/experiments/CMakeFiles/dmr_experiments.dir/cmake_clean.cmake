file(REMOVE_RECURSE
  "CMakeFiles/dmr_experiments.dir/experiments.cpp.o"
  "CMakeFiles/dmr_experiments.dir/experiments.cpp.o.d"
  "libdmr_experiments.a"
  "libdmr_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

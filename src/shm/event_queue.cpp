#include "shm/event_queue.hpp"

#include <algorithm>

#include "shm/test_hooks.hpp"
#include "trace/tracer.hpp"

namespace dmr::shm {

namespace {

/// Queue traffic instants (Category::kShm, wall clock). Pushes land on
/// the issuing client's lane, pops on the queue's consumer lane, so a
/// Perfetto view shows the fan-in from compute cores to the dedicated
/// core's event processing engine.
void trace_msg(const char* name, trace::EntityId entity, const Message& m) {
  if (trace::Tracer* tr = trace::current();
      tr != nullptr && tr->enabled(trace::Category::kShm)) {
    tr->record_instant(entity, trace::Category::kShm, name, tr->wall_now(),
                       m.block.size, static_cast<std::int32_t>(m.iteration));
  }
}

trace::EntityId client_lane(const Message& m) {
  return {trace::EntityType::kShmClient,
          static_cast<std::uint32_t>(std::max(0, m.client_id))};
}

}  // namespace

bool EventQueue::push(const Message& msg) {
  {
    MutexLock lock(mutex_);
    ShmObserver* o = observer();
    // The mutex is a synchronization object: entering the critical
    // section acquires every prior release on this queue, leaving it
    // releases our own history (mc::HbRaceDetector semantics).
    if (o) o->on_acquire({SyncPoint::Kind::kQueueMutex, this});
    if (closed_) {
      ++dropped_;
      // Observed under the lock so publish/consume hooks of distinct
      // messages are seen in queue order.
      if (o) {
        o->on_push(msg, /*accepted=*/false);
        o->on_release({SyncPoint::Kind::kQueueMutex, this});
      }
      trace_msg("push-dropped", client_lane(msg), msg);
      return false;
    }
    queue_.push_back(msg);
    ++pushed_;
    if (o) {
      o->on_push(msg, /*accepted=*/true);
      o->on_release({SyncPoint::Kind::kQueueMutex, this});
    }
    trace_msg("push", client_lane(msg), msg);
  }
  cv_.notify_one();
  return true;
}

std::optional<Message> EventQueue::pop() {
  MutexLock lock(mutex_);
  while (queue_.empty() && !closed_) cv_.wait(mutex_);
  ShmObserver* o = observer();
  if (o) o->on_acquire({SyncPoint::Kind::kQueueMutex, this});
  if (queue_.empty()) {
    if (o) o->on_release({SyncPoint::Kind::kQueueMutex, this});
    return std::nullopt;
  }
  Message m = queue_.front();
  queue_.pop_front();
  if (o) {
    o->on_pop(m);
    o->on_release({SyncPoint::Kind::kQueueMutex, this});
  }
  trace_msg("pop", {trace::EntityType::kShmQueue, 0}, m);
  return m;
}

std::optional<Message> EventQueue::try_pop() {
  MutexLock lock(mutex_);
  ShmObserver* o = observer();
  if (o) o->on_acquire({SyncPoint::Kind::kQueueMutex, this});
  if (queue_.empty()) {
    if (o) o->on_release({SyncPoint::Kind::kQueueMutex, this});
    return std::nullopt;
  }
  Message m = queue_.front();
  queue_.pop_front();
  if (o) {
    o->on_pop(m);
    o->on_release({SyncPoint::Kind::kQueueMutex, this});
  }
  trace_msg("pop", {trace::EntityType::kShmQueue, 0}, m);
  return m;
}

void EventQueue::close() {
  {
    MutexLock lock(mutex_);
    if (closed_) return;
    ShmObserver* o = observer();
    if (o) o->on_acquire({SyncPoint::Kind::kQueueMutex, this});
    closed_ = true;
    if (o) {
      o->on_close();
      o->on_release({SyncPoint::Kind::kQueueMutex, this});
    }
  }
#ifdef DMR_CHECK
  // Seeded lost-wakeup bug (tests/mc_test.cpp): forget to wake blocked
  // poppers. The model checker's cooperative wait model reads the same
  // flag and reports the resulting deadlock.
  if (test_hooks().skip_notify_on_close) return;
#endif
  cv_.notify_all();
}

bool EventQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

std::size_t EventQueue::size() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

std::uint64_t EventQueue::pushed() const {
  MutexLock lock(mutex_);
  return pushed_;
}

std::uint64_t EventQueue::dropped() const {
  MutexLock lock(mutex_);
  return dropped_;
}

}  // namespace dmr::shm

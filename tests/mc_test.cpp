// Tests for the concurrency-analysis subsystem (src/mc/): vector
// clocks, the happens-before race detector, the sleep-set DFS model
// checker, and — the part that keeps the verifiers honest — seeded
// mutations of the shm handoff protocol that each engine must catch.
//
// Suite names all start with "Mc" so `ctest -R '^Mc'` (scripts/check.sh
// --model) selects exactly this file.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mc/model_checker.hpp"
#include "mc/race_detector.hpp"
#include "mc/scenario.hpp"
#include "mc/scheduler.hpp"
#include "mc/vector_clock.hpp"
#include "mc/virtual_thread.hpp"
#include "shm/event_queue.hpp"
#include "shm/shared_buffer.hpp"
#include "shm/test_hooks.hpp"

namespace dmr::mc {
namespace {

std::string joined(const std::vector<std::string>& v) {
  std::ostringstream os;
  for (const auto& s : v) os << s << "\n";
  return os.str();
}

// ------------------------------------------------------------ VectorClock

TEST(McVectorClock, TickAdvancesOwnComponent) {
  VectorClock c;
  EXPECT_EQ(c.of(0), 0u);
  const Epoch e = c.tick(0);
  EXPECT_EQ(e.tid, 0);
  EXPECT_EQ(e.time, 1u);
  EXPECT_EQ(c.of(0), 1u);
  EXPECT_EQ(c.of(7), 0u);  // untouched components read as zero
}

TEST(McVectorClock, JoinIsComponentwiseMax) {
  VectorClock a;
  VectorClock b;
  a.set(0, 3);
  a.set(1, 1);
  b.set(1, 5);
  a.join(b);
  EXPECT_EQ(a.of(0), 3u);
  EXPECT_EQ(a.of(1), 5u);
}

TEST(McVectorClock, ObservedMatchesHappensBefore) {
  VectorClock reader;
  reader.set(2, 4);
  EXPECT_TRUE(reader.observed(Epoch{2, 4}));
  EXPECT_TRUE(reader.observed(Epoch{2, 3}));
  EXPECT_FALSE(reader.observed(Epoch{2, 5}));
  EXPECT_FALSE(reader.observed(Epoch{3, 1}));
}

TEST(McVectorClock, LeqIsPointwise) {
  VectorClock a;
  VectorClock b;
  a.set(0, 1);
  b.set(0, 2);
  b.set(1, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
}

// ------------------------------------------------------------- Footprints

TEST(McFootprint, IndependenceRelation) {
  Footprint queue0;
  queue0.queue = 0;
  Footprint part0;
  part0.partition = 0;
  Footprint part1;
  part1.partition = 1;
  Footprint anypart;
  anypart.partition = Footprint::kAny;
  Footprint read_a;
  read_a.payload = 42;
  Footprint write_a;
  write_a.payload = 42;
  write_a.payload_write = true;

  EXPECT_TRUE(dependent(queue0, queue0));    // same queue
  EXPECT_FALSE(dependent(queue0, part0));    // disjoint resource classes
  EXPECT_FALSE(dependent(part0, part1));     // distinct partitions commute
  EXPECT_TRUE(dependent(part0, anypart));    // wildcard matches everything
  EXPECT_FALSE(dependent(read_a, read_a));   // read-read never conflicts
  EXPECT_TRUE(dependent(read_a, write_a));   // read-write does
  EXPECT_TRUE(dependent(write_a, write_a));  // write-write does
}

// ---------------------------------------------------------- Race detector

shm::Block block_at(Bytes offset, Bytes size, int client) {
  shm::Block b;
  b.offset = offset;
  b.size = size;
  b.client_id = client;
  return b;
}

TEST(McRace, UnsyncedConflictingAccessesAreFlagged) {
  HbRaceDetector det;
  det.register_thread(0, "writer");
  det.register_thread(1, "reader");

  det.set_current_thread(0);
  det.set_context("write", 0);
  det.on_write(block_at(0, 64, 0));

  det.set_current_thread(1);
  det.set_context("read", 1);
  det.on_read(block_at(0, 64, 0));

  ASSERT_EQ(det.race_count(), 1u);
  const RaceReport r = det.races()[0];
  EXPECT_EQ(std::string(r.first.op), "write");
  EXPECT_EQ(std::string(r.second.op), "read");
  EXPECT_NE(r.first.tid, r.second.tid);
  EXPECT_NE(det.report().find("unordered"), std::string::npos);
}

TEST(McRace, SyncOrderedAccessesAreClean) {
  HbRaceDetector det;
  det.register_thread(0, "writer");
  det.register_thread(1, "reader");
  int dummy = 0;
  const shm::SyncPoint q{shm::SyncPoint::Kind::kQueueMutex, &dummy, -1};

  det.set_current_thread(0);
  det.on_write(block_at(0, 64, 0));
  det.on_acquire(q);
  det.on_release(q);  // publish: writer's past flows into the mutex

  det.set_current_thread(1);
  det.on_acquire(q);  // reader inherits the writer's clock
  det.on_read(block_at(0, 64, 0));

  EXPECT_EQ(det.race_count(), 0u);
}

TEST(McRace, ReleaseAcquireOnPartitionCounterOrders) {
  HbRaceDetector det;
  det.register_thread(0, "consumer");
  det.register_thread(1, "producer");
  int part = 0;
  const shm::SyncPoint p{shm::SyncPoint::Kind::kPartition, &part, 1};

  det.set_current_thread(0);
  det.on_read(block_at(128, 64, 1));
  det.on_release(p);  // deallocate: fetch_sub(release) on `live`

  det.set_current_thread(1);
  det.on_acquire(p);  // allocate: load(acquire) on `live`
  det.on_write(block_at(128, 64, 1));  // reuse of the same bytes

  EXPECT_EQ(det.race_count(), 0u);
}

TEST(McRace, ReadReadOverlapIsNotARace) {
  HbRaceDetector det;
  det.set_current_thread(0);
  det.on_read(block_at(0, 64, 0));
  det.set_current_thread(1);
  det.on_read(block_at(32, 64, 1));
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(McRace, DisjointRangesAreNotARace) {
  HbRaceDetector det;
  det.set_current_thread(0);
  det.on_write(block_at(0, 64, 0));
  det.set_current_thread(1);
  det.on_write(block_at(64, 64, 1));
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(McRace, ForkJoinEdgesOrderParentAndChild) {
  HbRaceDetector det;
  det.register_thread(0, "parent");
  det.register_thread(1, "child");

  det.set_current_thread(0);
  det.on_write(block_at(0, 64, 0));
  det.thread_create(0, 1);

  det.set_current_thread(1);
  det.on_read(block_at(0, 64, 0));  // after create: ordered
  det.on_write(block_at(0, 64, 0));
  det.thread_join(0, 1);

  det.set_current_thread(0);
  det.on_read(block_at(0, 64, 0));  // after join: ordered
  EXPECT_EQ(det.race_count(), 0u);
}

// A double release corrupts the allocator into handing overlapping
// blocks to two clients; their payload writes then overlap with no
// synchronization between the owners. This is the unordered access
// pair the detector contributes for the double-release mutation (the
// FSM-level kDoubleRelease itself is the protocol checker's catch —
// every access in the *honest* protocol is chained through sync edges,
// so the race only materializes through the corruption's overlap).
TEST(McRace, OverlapFromDoubleReleaseCorruptionIsARace) {
  HbRaceDetector det;
  det.register_thread(0, "client-0");
  det.register_thread(1, "client-1");

  det.set_current_thread(0);
  det.set_context("write", 0);
  det.on_write(block_at(0, 64, 0));

  det.set_current_thread(1);
  det.set_context("write", 1);
  det.on_write(block_at(32, 64, 1));  // overlaps [32, 64)

  ASSERT_EQ(det.race_count(), 1u);
  EXPECT_NE(det.races()[0].to_string().find("client-0"), std::string::npos);
  EXPECT_NE(det.races()[0].to_string().find("client-1"), std::string::npos);
}

// ------------------------------------------------------- Sync channels

// Drift guard for the shared channel table: sync_channels.hpp is
// consumed by this detector at runtime AND parsed textually by
// tools/dmr_verify; every SyncPoint::Kind must map to a distinct,
// non-placeholder channel name or the two views diverge silently.
TEST(McSyncChannels, EveryKindHasAUniqueChannelName) {
  std::vector<std::string> names;
  for (int i = 0; i < shm::kNumSyncPointKinds; ++i) {
    const char* name =
        shm::sync_channel_name(static_cast<shm::SyncPoint::Kind>(i));
    EXPECT_STRNE(name, "?") << "kind " << i << " missing from the table";
    names.emplace_back(name);
  }
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::unique(sorted.begin(), sorted.end()) == sorted.end())
      << joined(names);
}

TEST(McSyncChannels, RaceDetectorCountsEdgesPerChannel) {
  HbRaceDetector det;
  int dummy = 0;
  det.on_acquire({shm::SyncPoint::Kind::kQueueMutex, &dummy});
  det.on_release({shm::SyncPoint::Kind::kQueueMutex, &dummy});
  det.on_release({shm::SyncPoint::Kind::kPartition, &dummy, 0});
  auto stats = det.channel_stats();
  EXPECT_EQ(stats["queue_mutex"].acquires, 1);
  EXPECT_EQ(stats["queue_mutex"].releases, 1);
  EXPECT_EQ(stats["partition_live"].acquires, 0);
  EXPECT_EQ(stats["partition_live"].releases, 1);
  EXPECT_NE(
      det.report().find("sync channel queue_mutex: 1 acquire(s), 1 release(s)"),
      std::string::npos)
      << det.report();
}

// ---------------------------------------------------- Scheduler mechanics

TEST(McScheduler, SingleProducerScenarioExploresAndCompletes) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 1;
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(r.clean()) << r.cex->to_string();
  EXPECT_GE(r.executions, 1u);
}

TEST(McScheduler, SleepSetsPruneIndependentCommutations) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  // Two producers, one handoff each: the partitioned allocs commute,
  // only the publish order and consumer interleavings branch. The
  // reduced exploration must stay far below the naive interleaving
  // count (13 visible ops would naively allow thousands of schedules).
  ScenarioOptions s;
  s.producers = 2;
  s.handoffs = 1;
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  EXPECT_TRUE(r.clean());
  EXPECT_LT(r.executions, 500u) << r.summary();
}

TEST(McScheduler, ReplayReproducesASchedule) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions sopts;
  sopts.producers = 1;
  sopts.handoffs = 1;
  sopts.mutate_double_release = true;
  shm::TestHooks hooks;
  hooks.double_deallocate = true;
  shm::ScopedTestHooks guard(hooks);

  const ShmScenario scenario = ShmScenario::build(sopts);
  Scheduler sched(scenario, ModelOptions{});
  McResult r = sched.explore();
  ASSERT_TRUE(r.cex.has_value());

  std::vector<int> tids;
  for (const auto& step : r.cex->schedule) tids.push_back(step.tid);
  const Scheduler::Replay rep = sched.replay(tids);
  EXPECT_TRUE(rep.valid);
  EXPECT_TRUE(rep.violated);
  EXPECT_EQ(rep.schedule.size(), r.cex->schedule.size());
}

// ------------------------------------- Exhaustive honest-protocol checks

// The acceptance scenario: two producers, three handoffs each, against
// the partitioned allocator. The checker must exhaust the reduced
// state space with zero violations of the protocol FSM, the allocator
// invariants, FIFO delivery, payload integrity, and freedom from
// races and deadlock.
TEST(McModel, HonestTwoProducersThreeHandoffsPartitionedIsClean) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;  // defaults: 2 producers x 3 handoffs, partitioned
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  ASSERT_TRUE(r.clean()) << r.cex->to_string();
  EXPECT_FALSE(r.budget_exhausted) << r.summary();
}

TEST(McModel, HonestFirstFitIsClean) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  // First-fit shares one free list, so every alloc/release pair is
  // dependent — a coarser footprint and a bigger reduced space. Two
  // handoffs keep it comfortably inside the CI budget.
  ScenarioOptions s;
  s.producers = 2;
  s.handoffs = 2;
  s.policy = shm::AllocPolicy::kMutexFirstFit;
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  ASSERT_TRUE(r.clean()) << r.cex->to_string();
}

TEST(McModel, HonestProducerCloseDrainsFifo) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  // The producer closes after its own pushes; messages already queued
  // must still drain in FIFO order before pop returns nullopt.
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 2;
  s.close_by = ScenarioOptions::CloseBy::kProducerLast;
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  ASSERT_TRUE(r.clean()) << r.cex->to_string();
}

TEST(McModel, HonestWaitModelHasNoLostWakeup) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  // With the condvar modeled explicitly, close's notify is load-bearing:
  // the honest protocol must still terminate in every interleaving.
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 2;
  s.close_by = ScenarioOptions::CloseBy::kProducerLast;
  s.model_waiting = true;
  const McResult r = check_shm_protocol(s);
  EXPECT_TRUE(r.complete) << r.summary();
  ASSERT_TRUE(r.clean()) << r.cex->to_string();
}

// ---------------------------------------------------- Seeded-bug catches

TEST(McMutation, DoubleReleaseCaughtByProtocolChecker) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;
  s.producers = 2;
  s.handoffs = 1;
  s.mutate_double_release = true;
  const McResult r = check_shm_protocol(s);
  ASSERT_TRUE(r.cex.has_value()) << r.summary();
  EXPECT_FALSE(r.cex->schedule.empty());
  const std::string v = joined(r.cex->violations);
  // The FSM flags the second release of a non-live block; the allocator
  // integrity check independently reports the corrupted accounting.
  EXPECT_TRUE(v.find("double-release") != std::string::npos ||
              v.find("underflow") != std::string::npos)
      << r.cex->to_string();
}

TEST(McMutation, WriteAfterPublishCaughtByRaceDetector) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 1;
  s.mutate_write_after_publish = true;
  const McResult r = check_shm_protocol(s);
  ASSERT_TRUE(r.cex.has_value()) << r.summary();
  ASSERT_FALSE(r.cex->races.empty()) << r.cex->to_string();
  // The unordered pair is the late client write vs the server read, in
  // whichever order this counterexample scheduled them.
  const std::string race = r.cex->races[0].to_string();
  EXPECT_NE(race.find("late-write"), std::string::npos) << race;
  EXPECT_NE(race.find("read"), std::string::npos) << race;
}

TEST(McMutation, LostWakeupOnCloseCaughtAsDeadlock) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 1;
  s.close_by = ScenarioOptions::CloseBy::kProducerLast;
  s.model_waiting = true;  // lost wakeups only exist with real waits
  s.mutate_skip_close_notify = true;
  const McResult r = check_shm_protocol(s);
  ASSERT_TRUE(r.cex.has_value()) << r.summary();
  EXPECT_TRUE(r.cex->deadlock) << r.cex->to_string();
  const std::string v = joined(r.cex->violations);
  EXPECT_NE(v.find("lost wakeup"), std::string::npos) << v;
}

TEST(McMutation, CounterexampleExportsChromeTrace) {
  if (!instrumentation_enabled()) GTEST_SKIP() << "DMR_CHECK off";
  ScenarioOptions s;
  s.producers = 1;
  s.handoffs = 1;
  s.mutate_double_release = true;
  const std::string path = testing::TempDir() + "mc_counterexample.json";
  const McResult r = check_shm_protocol(s, ModelOptions{}, path);
  ASSERT_TRUE(r.cex.has_value());
  ASSERT_EQ(r.cex->trace_path, path) << "trace export failed";
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("release"), std::string::npos);  // schedule ops
}

// --------------------------------------------- Fixed drop-after-close path

// The [[nodiscard]] audit's poster child: pushing to a closed queue
// drops the message, and the pusher still owns the block. Releasing it
// (as core::Client::write_sized now does) must leave no leak.
TEST(McDropPath, DroppedPublishReleasesItsBlock) {
  shm::SharedBuffer buf(256, shm::AllocPolicy::kPartitioned, 1);
  shm::EventQueue q;
  auto r = buf.allocate(64, 0);
  ASSERT_TRUE(r.is_ok());
  q.close();
  shm::Message m;
  m.type = shm::MessageType::kWriteNotification;
  m.client_id = 0;
  m.block = r.value();
  ASSERT_FALSE(q.push(m));  // dropped: queue already closed
  buf.deallocate(r.value());
  EXPECT_EQ(buf.used(), 0u);
  EXPECT_TRUE(buf.check_integrity().is_ok());
}

}  // namespace
}  // namespace dmr::mc

// Ablation: Lustre stripe size under collective I/O — a KNOWN DEVIATION.
//
// Paper §IV-C1: "By setting the stripe size to 32 MB instead of 1 MB in
// Lustre, the write time went up to 1600 sec with Collective-I/O". That
// pathology comes from Lustre's client write-back cache: when the lock
// granularity (a stripe) exceeds the collective buffer, every flush
// revokes another client's dirty 32 MB extent and forces synchronous
// write-out — an amplification this queueing model deliberately does not
// include. In the model, larger stripes only mean fewer, larger server
// ops, so collective I/O *speeds up* with stripe size here. The sweep is
// kept because it documents exactly where the model and the real system
// part ways (see EXPERIMENTS.md), and because the Damaris half of the
// comparison — insensitivity to the knob — does reproduce.
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/experiments.hpp"

using namespace dmr;
using strategies::RunConfig;
using strategies::StrategyKind;

int main() {
  bench::banner("Ablation — Lustre stripe size (known deviation)",
                "the 1 MB vs 32 MB stripe anecdote of Section IV-C1",
                "paper: 32 MB stripes ~3x the collective phase via dirty-"
                "extent flush amplification, which this model omits; the "
                "model instead shows the pure op-aggregation effect");

  Table t({"stripe size", "phase avg (s)", "phase max (s)",
           "throughput (MiB/s)", "lock revocations"});
  for (Bytes stripe : {1 * MiB, 4 * MiB, 32 * MiB}) {
    RunConfig cfg = experiments::kraken_config(StrategyKind::kCollectiveIo,
                                               4608, /*iterations=*/3,
                                               /*write_interval=*/1);
    cfg.platform.fs.stripe_size = stripe;
    auto res = run_strategy(cfg);
    t.add_row({format_bytes(stripe),
               Table::num(res.phase_seconds.mean(), 1),
               Table::num(res.phase_seconds.max(), 1),
               bench::mib_per_s(res.aggregate_throughput),
               std::to_string(res.fs_stats.lock_revocations)});
  }
  t.print();
  std::printf(
      "\nNOTE: the collective trend above is opposite to the paper's "
      "anecdote — see the header comment and EXPERIMENTS.md.\n");

  std::printf("\nDamaris is insensitive to the same knob (its per-node "
              "files stream sequentially), which does match the paper's "
              "robustness story:\n");
  Table d({"stripe size", "writer write avg (s)", "throughput (GiB/s)"});
  for (Bytes stripe : {1 * MiB, 32 * MiB}) {
    RunConfig cfg = experiments::kraken_config(StrategyKind::kDamaris, 4608,
                                               /*iterations=*/3,
                                               /*write_interval=*/1,
                                               /*iteration_seconds=*/30.0);
    cfg.platform.fs.stripe_size = stripe;
    auto res = run_strategy(cfg);
    d.add_row({format_bytes(stripe),
               Table::num(res.dedicated_write_seconds.mean(), 2),
               bench::gib_per_s(res.aggregate_throughput)});
  }
  d.print();
  return 0;
}

// Tracer — the process-wide collection point of the tracing layer.
//
// A Tracer owns a set of lock-free TraceRings, sharded by entity id, so
// each simulated rank / dedicated core / FS server effectively gets its
// own timeline buffer (entities hashing to the same shard share one
// ring; events carry their entity, so the exported per-entity lanes are
// exact regardless of sharding). Recording costs one relaxed atomic
// load (the category mask), one fetch_add and a handful of relaxed
// stores — no locks, no allocation after the first event in a shard.
//
// Gating is two-level, mirroring DMR_CHECK (DESIGN.md §8):
//  - compile time: hooks all over the codebase call trace::current();
//    with the DMR_TRACE CMake option OFF this is a constexpr nullptr
//    and every hook folds away, leaving the zero-trace hot path
//    byte-identical (verified by the DES determinism digests and the
//    bench_pipeline trace-overhead comparison);
//  - runtime: with DMR_TRACE on, hooks fire only when a Tracer is
//    installed *and* the event's category is enabled on it.
//
// Thread-safety: record_*() and enabled() may be called from any
// thread. install()/ScopedTracer swap a process-wide atomic pointer —
// install from one thread at a time (the benches and tests run one
// traced workload per process) and only drain after the traced work
// quiesced. Tracing never feeds back into the traced system: a run
// with a tracer attached produces bit-identical results to a run
// without (pinned by trace_test).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/event.hpp"
#include "trace/ring.hpp"

namespace dmr::trace {

struct TracerOptions {
  /// Bitmask of Category values enabled at construction.
  std::uint32_t categories = kAllCategories;
  /// Events per shard ring (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
  /// Number of entity shards (rounded up to a power of two). Shards are
  /// allocated lazily, so idle entities cost nothing.
  std::size_t shards = 256;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled(Category c) const {
    return (categories_.load(std::memory_order_relaxed) & category_bit(c)) !=
           0;
  }
  void set_enabled(Category c, bool on);

  void record(const TraceEvent& ev);

  void record_span(EntityId entity, Category cat, const char* name, double t,
                   double dur, std::uint64_t bytes = 0, std::int32_t phase = -1);
  void record_instant(EntityId entity, Category cat, const char* name,
                      double t, std::uint64_t bytes = 0,
                      std::int32_t phase = -1);
  void record_counter(EntityId entity, Category cat, const char* name,
                      double t, std::uint64_t value);

  /// Wall-clock seconds since this tracer was constructed (steady).
  /// Timestamp domain for events recorded outside a simulation.
  double wall_now() const;

  /// Total events recorded / lost to ring wrapping, over all shards.
  std::uint64_t recorded() const;
  std::uint64_t overwritten() const;

  /// Merged snapshot of all shards, sorted by (t, entity, ring order) —
  /// deterministic for a deterministic workload. Call after the traced
  /// workload quiesced.
  std::vector<TraceEvent> drain() const;

 private:
  TraceRing& shard(EntityId entity);

  const std::size_t num_shards_;  // power of two
  const std::size_t shard_mask_;
  const std::size_t ring_capacity_;
  std::atomic<std::uint32_t> categories_;
  std::unique_ptr<std::atomic<TraceRing*>[]> shards_;
  std::chrono::steady_clock::time_point t0_;
};

/// Installs `t` as the process-wide tracer and returns the previous one
/// (nullptr uninstalls). No-op returning nullptr in non-DMR_TRACE
/// builds.
Tracer* install(Tracer* t);

#ifdef DMR_TRACE
namespace detail {
extern std::atomic<Tracer*> g_tracer;
}
/// The installed tracer, or nullptr. One relaxed-ish atomic load.
inline Tracer* current() {
  return detail::g_tracer.load(std::memory_order_acquire);
}
#else
/// DMR_TRACE is off: constexpr nullptr folds every hook to nothing.
inline constexpr Tracer* current() { return nullptr; }
#endif

/// RAII install/restore. A null tracer leaves the ambient one in place
/// (so un-traced runs compose with an outer traced session).
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* t)
      : active_(t != nullptr), prev_(active_ ? install(t) : nullptr) {}
  ~ScopedTracer() {
    if (active_) install(prev_);
  }

  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  bool active_;
  Tracer* prev_;
};

}  // namespace dmr::trace

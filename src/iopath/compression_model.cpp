#include "iopath/compression_model.hpp"

namespace dmr::iopath {

CompressionModel CompressionModel::for_pipeline_name(std::string_view name) {
  if (name == "lossless") return lossless();
  if (name == "visualization") return visualization();
  return none();
}

format::Pipeline CompressionModel::codec_pipeline() const {
  switch (kind_) {
    case Kind::kNone: return format::Pipeline::identity();
    case Kind::kLossless: return format::Pipeline::lossless();
    case Kind::kVisualization: return format::Pipeline::visualization();
  }
  return format::Pipeline::identity();
}

const char* CompressionModel::name() const {
  switch (kind_) {
    case Kind::kNone: return "none";
    case Kind::kLossless: return "lossless";
    case Kind::kVisualization: return "visualization";
  }
  return "?";
}

}  // namespace dmr::iopath

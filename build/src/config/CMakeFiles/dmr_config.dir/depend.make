# Empty dependencies file for dmr_config.
# This may be replaced when dependencies are built.

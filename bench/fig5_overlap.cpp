// Figure 5: time spent by the dedicated cores writing data for each
// iteration, and the time they spare — (a) on Kraken across scales,
// (b) on BluePrint across output sizes.
//
// Paper: the dedicated cores fully overlap writes with computation and
// remain idle 75% to 99% of the time; on Kraken the write time grows
// with the process count (contention), on BluePrint with the data size.
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/experiments.hpp"

using namespace dmr;
using strategies::RunConfig;
using strategies::StrategyKind;

int main(int argc, char** argv) {
  bench::TraceSession trace_session(argc, argv);
  bench::banner("Figure 5 — dedicated-core write time vs spare time",
                "Fig. 5a/5b, Section IV-C2",
                "writes fully overlap; dedicated cores idle 75-99% of time");

  // The paper's cadence for these runs: one output per ~230 s iteration.
  const double kIterSeconds = 230.0;

  std::printf("\n(a) Kraken, one write per %.0f s iteration\n", kIterSeconds);
  Table a({"cores", "write avg (s)", "write max (s)", "spare avg (s)",
           "spare fraction"});
  for (int cores : experiments::kraken_scales()) {
    RunConfig cfg = experiments::kraken_config(
        StrategyKind::kDamaris, cores, /*iterations=*/5,
        /*write_interval=*/1, kIterSeconds);
    cfg.tracer = trace_session.tracer_once();
    auto res = run_strategy(cfg);
    const double write = res.dedicated_write_seconds.mean();
    a.add_row({std::to_string(cores), Table::num(write, 2),
               Table::num(res.dedicated_write_seconds.max(), 2),
               Table::num(kIterSeconds * res.dedicated_spare_fraction, 1),
               Table::num(res.dedicated_spare_fraction, 3)});
  }
  a.print();

  std::printf("\n(b) BluePrint (1024 cores), one write per %.0f s iteration\n",
              kIterSeconds);
  Table b({"data/phase", "write avg (s)", "write max (s)", "spare avg (s)",
           "spare fraction"});
  for (double bpp : {16.0, 32.0, 64.0, 112.0}) {
    RunConfig cfg = experiments::blueprint_config(
        StrategyKind::kDamaris, 1024, /*iterations=*/5,
        /*write_interval=*/1, bpp);
    cfg.workload.seconds_per_iteration =
        kIterSeconds * cfg.workload.seconds_per_iteration / 4.1;
    auto res = run_strategy(cfg);
    b.add_row({format_bytes(res.bytes_per_phase),
               Table::num(res.dedicated_write_seconds.mean(), 2),
               Table::num(res.dedicated_write_seconds.max(), 2),
               Table::num(kIterSeconds * res.dedicated_spare_fraction, 1),
               Table::num(res.dedicated_spare_fraction, 3)});
  }
  b.print();
  return 0;
}

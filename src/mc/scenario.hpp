// Producer/consumer scenarios over the real shm layer, expressed as
// VirtualThread programs for the model checker.
//
// A ShmScenario builds the paper's §III-B handoff — P clients each
// performing H handoffs (allocate -> write -> publish) against one
// consumer (pop -> read -> release), plus a close/drain tail — as
// programs whose every operation calls the *production*
// shm::EventQueue / shm::SharedBuffer code. An Execution instantiates
// fresh state (queue, buffer, protocol checker, race detector) for one
// run; the Scheduler replays thousands of Executions, one per explored
// interleaving.
//
// Two condvar models:
//  - guarded (default): a blocking pop is modeled by disabling the
//    consumer while the queue is empty and open. Sound for all safety
//    properties and much smaller state spaces.
//  - wait-channel (model_waiting = true): the consumer executes an
//    explicit check-and-sleep transition and must be woken by a
//    notify from push/close — the model that detects lost wakeups
//    (shm::TestHooks::skip_notify_on_close).
//
// Mutations (shm::test_hooks() flags + ScenarioOptions mirrors) seed
// the three classic handoff bugs; tests/mc_test.cpp asserts the
// engines catch each one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/protocol_checker.hpp"
#include "common/units.hpp"
#include "mc/race_detector.hpp"
#include "mc/virtual_thread.hpp"
#include "shm/event_queue.hpp"
#include "shm/shared_buffer.hpp"

namespace dmr::mc {

struct ScenarioOptions {
  int producers = 2;
  int handoffs = 3;  // allocate/write/publish triples per producer
  shm::AllocPolicy policy = shm::AllocPolicy::kPartitioned;
  Bytes block_size = 64;
  /// 0 = auto (producers * handoffs * block_size — tight but always
  /// sufficient for equal-size blocks).
  Bytes capacity = 0;

  enum class CloseBy {
    kConsumer,      // consumer closes after receiving every handoff
    kProducerLast,  // the last producer closes after its own pushes
    kNobody,        // queue stays open; consumer stops at the expected count
  };
  CloseBy close_by = CloseBy::kConsumer;

  /// Model the condvar wait explicitly (required to detect lost
  /// wakeups; larger state space).
  bool model_waiting = false;

  // Seeded bugs (see shm/test_hooks.hpp). The model-checker facade
  // installs the matching shm::test_hooks() flags for the exploration.
  bool mutate_double_release = false;
  bool mutate_write_after_publish = false;
  bool mutate_skip_close_notify = false;

  int expected_messages() const { return producers * handoffs; }
  bool any_mutation() const {
    return mutate_double_release || mutate_write_after_publish ||
           mutate_skip_close_notify;
  }
  std::string to_string() const;
};

class ShmScenario {
 public:
  static ShmScenario build(const ScenarioOptions& opts);

  const ScenarioOptions& options() const { return opts_; }
  const std::vector<VirtualThread>& threads() const { return threads_; }

  /// Symbolic payload tag of producer `p`'s handoff `h` (footprint
  /// identity for the independence relation).
  static int tag(int p, int h) { return p * 1024 + h + 1; }

  /// Deterministic payload fill byte for (client, iteration).
  static std::byte fill_byte(int client, std::int64_t iteration) {
    return static_cast<std::byte>((client * 31 + iteration * 7 + 1) & 0xFF);
  }

 private:
  ScenarioOptions opts_;
  std::vector<VirtualThread> threads_;
};

/// Mutable state of one model-checked run: the real shm objects, both
/// analysis engines, per-thread runtime, and scenario bookkeeping.
class Execution {
 public:
  explicit Execution(const ShmScenario& scenario);

  struct ThreadState {
    int pc = 0;
    bool finished = false;
    bool blocked = false;
    shm::Block cur_block{};   // producer: block of the handoff in flight
    shm::Message cur_msg{};   // consumer: message being processed
  };

  shm::EventQueue& queue() { return queue_; }
  shm::SharedBuffer& buffer() { return *buffer_; }
  check::ProtocolChecker& checker() { return checker_; }
  HbRaceDetector& detector() { return detector_; }
  const ShmScenario& scenario() const { return *scenario_; }

  ThreadState& state(int tid) { return states_[tid]; }
  const std::vector<ThreadState>& states() const { return states_; }

  void set_current(int tid) { current_ = tid; }
  int current() const { return current_; }

  /// Registers the current thread as waiting on the queue's condvar
  /// model (wait-channel mode) and marks it blocked.
  void block_current_on_queue();
  /// Wakes every thread waiting on the queue (push's notify, close's
  /// notify-unless-mutated).
  void notify_queue();

  /// Records an invariant violation observed by scenario code (FIFO
  /// order, payload corruption, unexpected allocation failure).
  void error(std::string msg) { errors_.push_back(std::move(msg)); }
  const std::vector<std::string>& errors() const { return errors_; }

  // Consumer bookkeeping.
  int received = 0;
  std::map<int, std::int64_t> last_iteration;  // per-client FIFO check

 private:
  /// Forwards every hook to both engines (ShmObserver allows a single
  /// observer per object).
  class MuxObserver : public shm::ShmObserver {
   public:
    MuxObserver(check::ProtocolChecker& checker, HbRaceDetector& detector)
        : checker_(checker), detector_(detector) {}
    void on_allocate(const shm::Block& b) override {
      checker_.on_allocate(b);
      detector_.on_allocate(b);
    }
    void on_write(const shm::Block& b) override {
      checker_.on_write(b);
      detector_.on_write(b);
    }
    void on_read(const shm::Block& b) override {
      checker_.on_read(b);
      detector_.on_read(b);
    }
    void on_deallocate(const shm::Block& b) override {
      checker_.on_deallocate(b);
      detector_.on_deallocate(b);
    }
    void on_push(const shm::Message& m, bool accepted) override {
      checker_.on_push(m, accepted);
      detector_.on_push(m, accepted);
    }
    void on_pop(const shm::Message& m) override {
      checker_.on_pop(m);
      detector_.on_pop(m);
    }
    void on_close() override {
      checker_.on_close();
      detector_.on_close();
    }
    void on_acquire(const shm::SyncPoint& s) override {
      checker_.on_acquire(s);
      detector_.on_acquire(s);
    }
    void on_release(const shm::SyncPoint& s) override {
      checker_.on_release(s);
      detector_.on_release(s);
    }

   private:
    check::ProtocolChecker& checker_;
    HbRaceDetector& detector_;
  };

  const ShmScenario* scenario_;
  shm::EventQueue queue_;
  std::unique_ptr<shm::SharedBuffer> buffer_;
  check::ProtocolChecker checker_;
  HbRaceDetector detector_;
  MuxObserver mux_;
  std::vector<ThreadState> states_;
  std::vector<int> queue_waiters_;
  std::vector<std::string> errors_;
  int current_ = -1;
};

}  // namespace dmr::mc

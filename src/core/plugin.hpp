// Plugin system (paper §III-C "Behavior management and user-defined
// actions").
//
// A plugin is a function the event processing engine calls in response to
// an event sent by the simulation (df_signal). The original loads them
// from shared objects or Python; here plugins are registered callables —
// the same extension point without a dynamic loader.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "core/metadata.hpp"
#include "shm/shared_buffer.hpp"

namespace dmr::core {

class DamarisNode;

/// Everything an action may touch when it runs on the dedicated core.
struct EventContext {
  DamarisNode& node;
  /// The signalling client's shard (dedicated core): its metadata view.
  MetadataManager& metadata;
  shm::SharedBuffer& buffer;
  std::string event_name;
  std::int64_t iteration = 0;
  int source = -1;  // client that signalled (or -1 for group events)
  int shard = 0;    // which dedicated core is running this action
};

using PluginFn = std::function<void(EventContext&)>;

class PluginRegistry {
 public:
  /// Registers (or replaces) an action under `name`.
  void register_action(const std::string& name, PluginFn fn);

  /// nullptr when unknown.
  const PluginFn* find(const std::string& name) const;

  bool contains(const std::string& name) const { return find(name); }
  std::size_t size() const { return actions_.size(); }

 private:
  std::map<std::string, PluginFn> actions_;
};

}  // namespace dmr::core

file(REMOVE_RECURSE
  "libdmr_des.a"
)

#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.hpp"

namespace dmr {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  // Level changes need no ordering with the messages they gate.
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_emit(LogLevel level, std::string_view component,
              std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_tag(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace dmr

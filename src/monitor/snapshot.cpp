#include "monitor/snapshot.hpp"

#include <cstdio>

#include "iopath/stage.hpp"

namespace dmr::monitor {

namespace {

/// %.6g rendering, matching the experiments/report JSON convention.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }
std::string num(std::int64_t v) { return std::to_string(v); }

/// Minimal string escaping for the few free-form fields (labels,
/// alerts): quotes and backslashes; control characters become spaces.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string jitter_json(const trace::JitterSummary& j) {
  std::string out = "{";
  out += "\"count\":" + num(static_cast<std::uint64_t>(j.count));
  out += ",\"mean\":" + num(j.mean);
  out += ",\"stddev\":" + num(j.stddev);
  out += ",\"min\":" + num(j.min);
  out += ",\"p50\":" + num(j.p50);
  out += ",\"p95\":" + num(j.p95);
  out += ",\"max\":" + num(j.max);
  out += ",\"spread\":" + num(j.spread);
  out += "}";
  return out;
}

}  // namespace

std::string MonitorSnapshot::to_json() const {
  std::string out = "{\"type\":\"snapshot\"";
  out += ",\"seq\":" + num(sequence);
  out += ",\"uptime_s\":" + num(uptime_seconds);
  out += ",\"source\":" + quoted(source);
  out += ",\"iterations\":" + num(iterations);
  out += ",\"shards\":" + num(static_cast<std::int64_t>(shards));
  out += ",\"clients\":" + num(static_cast<std::int64_t>(clients));
  out += ",\"spare_fraction\":" + num(spare_fraction);
  out += ",\"write_jitter\":" + jitter_json(write_jitter);
  out += ",\"degrade\":{\"mode\":" + quoted(degrade_mode);
  out += ",\"pressure_events\":" + num(degrade.pressure_events);
  out += ",\"escalations\":" + num(degrade.escalations);
  out += ",\"recoveries\":" + num(degrade.recoveries) + "}";
  if (ledger_valid) {
    out += ",\"ledger\":{\"published\":" + num(ledger.published);
    out += ",\"persisted\":" + num(ledger.persisted);
    out += ",\"superseded\":" + num(ledger.superseded);
    out += ",\"failed_persists\":" + num(ledger.failed_persists);
    out += ",\"sync_written\":" + num(ledger.sync_written);
    out += ",\"dropped\":" + num(ledger.dropped);
    out += ",\"failed_writes\":" + num(ledger.failed_writes);
    out += ",\"retries\":" + num(ledger.retries) + "}";
  } else {
    out += ",\"ledger\":null";
  }
  out += ",\"stages\":[";
  bool first_stage = true;
  for (int i = 0; i < iopath::kNumStageKinds; ++i) {
    const auto kind = static_cast<iopath::StageKind>(i);
    const iopath::StageCounters& c = stages.of(kind);
    if (!first_stage) out += ",";
    first_stage = false;
    out += "{\"stage\":" + quoted(iopath::stage_name(kind));
    out += ",\"ops\":" + num(c.ops);
    out += ",\"seconds\":" + num(c.seconds);
    out += ",\"bytes_in\":" + num(static_cast<std::uint64_t>(c.bytes_in));
    out += ",\"bytes_out\":" + num(static_cast<std::uint64_t>(c.bytes_out));
    out += "}";
  }
  out += "]";
  out += ",\"outstanding_tickets\":" + num(outstanding_tickets);
  out += ",\"plugin_seconds\":" + num(plugin_seconds);
  out += ",\"plugins\":[";
  for (std::size_t i = 0; i < plugins.size(); ++i) {
    const plugin::PluginStats& p = plugins[i];
    if (i != 0) out += ",";
    out += "{\"name\":" + quoted(p.name);
    out += ",\"iterations\":" + num(p.iterations);
    out += ",\"blocks\":" + num(p.blocks);
    out += ",\"bytes\":" + num(static_cast<std::uint64_t>(p.bytes));
    out += ",\"seconds\":" + num(p.seconds);
    out += ",\"max_iteration_seconds\":" + num(p.max_iteration_seconds);
    out += ",\"errors\":" + num(p.errors);
    out += ",\"overruns\":" + num(p.overruns);
    out += std::string(",\"disabled\":") + (p.disabled ? "true" : "false");
    out += "}";
  }
  out += "]";
  if (!tenants.empty()) {
    out += ",\"tenants\":[";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      const TenantRow& t = tenants[i];
      if (i != 0) out += ",";
      out += "{\"id\":" + num(static_cast<std::int64_t>(t.id));
      out += ",\"name\":" + quoted(t.name);
      out += ",\"tier\":" + quoted(t.tier);
      out += ",\"p95_s\":" + num(t.p95_seconds);
      out += ",\"bytes\":" + num(t.bytes);
      out += ",\"slo\":" + quoted(t.slo);
      out += "}";
    }
    out += "]";
  }
  out += ",\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    if (i != 0) out += ",";
    out += quoted(alerts[i]);
  }
  out += "]}";
  return out;
}

std::vector<std::string> evaluate_slo(const MonitorSnapshot& snap,
                                      const SloPolicy& slo) {
  std::vector<std::string> alerts;
  if (snap.write_jitter.count == 0) return alerts;
  const double p95_ms = snap.write_jitter.p95 * 1000.0;
  const double max_ms = snap.write_jitter.max * 1000.0;
  if (slo.p95_ms > 0.0 && p95_ms > slo.p95_ms) {
    alerts.push_back("slo: write p95 " + num(p95_ms) + "ms > " +
                     num(slo.p95_ms) + "ms");
  }
  if (slo.max_ms > 0.0 && max_ms > slo.max_ms) {
    alerts.push_back("slo: write max " + num(max_ms) + "ms > " +
                     num(slo.max_ms) + "ms");
  }
  return alerts;
}

}  // namespace dmr::monitor

// Fixture channel table. kGhost is not declared by observer.hpp
// (drift, opposite direction) and ghost_mutex/dead_channel have no
// instrumented sites (dead entries).
#pragma once

#define DMR_SYNC_POINT_CHANNELS(X) \
  X(kQueueMutex, queue_mutex)      \
  X(kGhost, ghost_mutex)

#define DMR_ATOMIC_CHANNELS(X) \
  X(flag_channel)              \
  X(dead_channel)

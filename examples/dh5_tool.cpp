// dh5_tool — command-line inspector for Damaris output.
//
//   dh5_tool ls <dir>                 catalog summary of a directory
//   dh5_tool info <file.dh5>          datasets of one file
//   dh5_tool verify <file.dh5>        decode + CRC-check every dataset
//   dh5_tool field <dir> <var> <it> <px> <py>
//                                     reassemble the global field and
//                                     print its statistics
//
// This is the post-processing path whose tractability the paper's
// gathered per-node files are designed to preserve.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.hpp"
#include "common/units.hpp"
#include "format/dh5.hpp"
#include "postproc/catalog.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dh5_tool ls <dir>\n"
               "       dh5_tool info <file.dh5>\n"
               "       dh5_tool verify <file.dh5>\n"
               "       dh5_tool field <dir> <variable> <iteration> <px> "
               "<py>\n");
  return 2;
}

int cmd_ls(const char* dir) {
  auto cat = dmr::postproc::Catalog::scan(dir);
  if (!cat.is_ok()) {
    std::fprintf(stderr, "%s\n", cat.status().to_string().c_str());
    return 1;
  }
  const auto& c = cat.value();
  std::printf("%zu files, %zu datasets, %s raw -> %s stored\n",
              c.num_files(), c.entries().size(),
              dmr::format_bytes(c.total_raw_bytes()).c_str(),
              dmr::format_bytes(c.total_stored_bytes()).c_str());
  dmr::Table t({"variable", "iterations", "sources/iter"});
  for (const auto& var : c.variables()) {
    std::size_t iters = 0, sources = 0;
    for (std::int64_t it : c.iterations()) {
      const auto blocks = c.find(var, it);
      if (!blocks.empty()) {
        ++iters;
        sources = blocks.size();
      }
    }
    t.add_row({var, std::to_string(iters), std::to_string(sources)});
  }
  t.print();
  return 0;
}

int cmd_info(const char* path) {
  auto reader = dmr::format::Dh5Reader::open(path);
  if (!reader.is_ok()) {
    std::fprintf(stderr, "%s\n", reader.status().to_string().c_str());
    return 1;
  }
  dmr::Table t({"name", "iteration", "source", "type", "dims", "raw",
                "stored", "codecs"});
  for (const auto& e : reader.value().entries()) {
    std::string dims;
    for (std::size_t i = 0; i < e.info.layout.dims.size(); ++i) {
      dims += (i ? "x" : "") + std::to_string(e.info.layout.dims[i]);
    }
    std::string codecs;
    for (auto id : e.codecs) {
      const auto* c = dmr::format::codec_for(id);
      codecs += (codecs.empty() ? "" : "+") + (c ? c->name() : "?");
    }
    t.add_row({e.info.name, std::to_string(e.info.iteration),
               std::to_string(e.info.source),
               dmr::format::datatype_name(e.info.layout.type), dims,
               dmr::format_bytes(e.raw_size),
               dmr::format_bytes(e.stored_size),
               codecs.empty() ? "-" : codecs});
  }
  t.print();
  return 0;
}

int cmd_verify(const char* path) {
  auto reader = dmr::format::Dh5Reader::open(path);
  if (!reader.is_ok()) {
    std::fprintf(stderr, "OPEN FAILED: %s\n",
                 reader.status().to_string().c_str());
    return 1;
  }
  int bad = 0;
  for (std::size_t i = 0; i < reader.value().entries().size(); ++i) {
    auto data = reader.value().read(i);
    const auto& e = reader.value().entries()[i];
    if (!data.is_ok()) {
      std::printf("FAIL %-16s it=%lld src=%d: %s\n", e.info.name.c_str(),
                  static_cast<long long>(e.info.iteration), e.info.source,
                  data.status().to_string().c_str());
      ++bad;
    }
  }
  std::printf("%zu datasets, %d bad\n", reader.value().entries().size(),
              bad);
  return bad ? 1 : 0;
}

int cmd_field(const char* dir, const char* var, const char* it_str,
              const char* px_str, const char* py_str) {
  auto cat = dmr::postproc::Catalog::scan(dir);
  if (!cat.is_ok()) {
    std::fprintf(stderr, "%s\n", cat.status().to_string().c_str());
    return 1;
  }
  auto field = dmr::postproc::assemble_field(
      cat.value(), var, std::atoll(it_str), std::atoi(px_str),
      std::atoi(py_str));
  if (!field.is_ok()) {
    std::fprintf(stderr, "%s\n", field.status().to_string().c_str());
    return 1;
  }
  const auto& f = field.value();
  std::printf("%s @ it %s: %llux%llux%llu  min=%.5g max=%.5g mean=%.5g\n",
              var, it_str, static_cast<unsigned long long>(f.nx),
              static_cast<unsigned long long>(f.ny),
              static_cast<unsigned long long>(f.nz), f.min(), f.max(),
              f.mean());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  if (std::strcmp(argv[1], "ls") == 0 && argc == 3) return cmd_ls(argv[2]);
  if (std::strcmp(argv[1], "info") == 0 && argc == 3) {
    return cmd_info(argv[2]);
  }
  if (std::strcmp(argv[1], "verify") == 0 && argc == 3) {
    return cmd_verify(argv[2]);
  }
  if (std::strcmp(argv[1], "field") == 0 && argc == 7) {
    return cmd_field(argv[2], argv[3], argv[4], argv[5], argv[6]);
  }
  return usage();
}

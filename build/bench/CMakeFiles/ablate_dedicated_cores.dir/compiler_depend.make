# Empty compiler generated dependencies file for ablate_dedicated_cores.
# This may be replaced when dependencies are built.

// Tiny RGB image + PPM output for the in-situ visualization bridge
// (paper §VI future work: inline visualization through the I/O cores,
// without blocking the simulation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace dmr::vis {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
  bool operator==(const Rgb&) const = default;
};

class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgb fill = {0, 0, 0})
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * height, fill) {}

  int width() const { return width_; }
  int height() const { return height_; }

  Rgb& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  const Rgb& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Writes binary PPM (P6).
  Status write_ppm(const std::string& path) const;

  /// Reads a P6 PPM back (for tests and tooling).
  static Result<Image> read_ppm(const std::string& path);

 private:
  int width_ = 0, height_ = 0;
  std::vector<Rgb> pixels_;
};

/// Perceptually ordered blue→green→yellow colormap (viridis-like,
/// piecewise-linear over a small anchor table). `t` is clamped to [0,1].
Rgb colormap(double t);

/// Maps `value` into [0,1] over [lo, hi] and colors it; degenerate
/// ranges map to the midpoint color.
Rgb colorize(float value, float lo, float hi);

}  // namespace dmr::vis

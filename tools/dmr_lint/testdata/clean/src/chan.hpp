#pragma once
namespace dmr {
#define DMR_GUARDED_BY(x)
class Mutex {};
class Channel {
  mutable Mutex mutex_;
  int items_ DMR_GUARDED_BY(mutex_) = 0;
};
}  // namespace dmr

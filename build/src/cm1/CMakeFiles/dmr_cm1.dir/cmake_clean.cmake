file(REMOVE_RECURSE
  "CMakeFiles/dmr_cm1.dir/solver.cpp.o"
  "CMakeFiles/dmr_cm1.dir/solver.cpp.o.d"
  "CMakeFiles/dmr_cm1.dir/workload.cpp.o"
  "CMakeFiles/dmr_cm1.dir/workload.cpp.o.d"
  "libdmr_cm1.a"
  "libdmr_cm1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_cm1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "check/fault_checker.hpp"

#include <sstream>

namespace dmr::check {

std::string_view write_outcome_name(WriteOutcome o) {
  switch (o) {
    case WriteOutcome::kPublished: return "published";
    case WriteOutcome::kSyncWritten: return "sync-written";
    case WriteOutcome::kDropped: return "dropped";
    case WriteOutcome::kFailed: return "failed";
  }
  return "?";
}

void FaultChecker::watch(shm::SharedBuffer& buffer) {
  MutexLock lock(mutex_);
  buffers_.push_back(&buffer);
}

void FaultChecker::note_write(int client, std::int64_t it,
                              WriteOutcome outcome) {
  (void)client;
  MutexLock lock(mutex_);
  switch (outcome) {
    case WriteOutcome::kPublished: ++ledger_[it].published; break;
    case WriteOutcome::kSyncWritten: ++sync_written_; break;
    case WriteOutcome::kDropped: ++dropped_; break;
    case WriteOutcome::kFailed: ++failed_writes_; break;
  }
}

void FaultChecker::note_superseded(std::int64_t it) {
  MutexLock lock(mutex_);
  ++ledger_[it].superseded;
}

void FaultChecker::note_persist(int shard, std::int64_t it, int blocks,
                                const Status& status) {
  MutexLock lock(mutex_);
  const int seen = ++persist_seen_[{shard, it}];
  if (seen > 1) {
    std::ostringstream os;
    os << "double persist: shard " << shard << " persisted iteration " << it
       << " " << seen << " times";
    early_violations_.push_back(os.str());
  }
  Ledger& l = ledger_[it];
  if (status.is_ok()) {
    l.persisted += static_cast<std::uint64_t>(blocks);
  } else {
    l.failed_persist += static_cast<std::uint64_t>(blocks);
  }
}

void FaultChecker::note_retry() {
  MutexLock lock(mutex_);
  ++retries_;
}

FaultChecker::Counters FaultChecker::snapshot() const {
  MutexLock lock(mutex_);
  Counters c;
  c.sync_written = sync_written_;
  c.dropped = dropped_;
  c.failed_writes = failed_writes_;
  c.retries = retries_;
  for (const auto& [it, l] : ledger_) {
    (void)it;
    c.published += l.published;
    c.persisted += l.persisted;
    c.superseded += l.superseded;
    c.failed_persists += l.failed_persist;
  }
  return c;
}

FaultChecker::Report FaultChecker::finalize() const {
  MutexLock lock(mutex_);
  Report rep;
  rep.violations = early_violations_;
  rep.sync_written = sync_written_;
  rep.dropped = dropped_;
  rep.failed_writes = failed_writes_;
  rep.retries = retries_;
  for (const auto& [it, l] : ledger_) {
    rep.published += l.published;
    rep.persisted += l.persisted;
    rep.superseded += l.superseded;
    rep.failed_persists += l.failed_persist;
    const std::uint64_t accounted =
        l.persisted + l.superseded + l.failed_persist;
    if (accounted == l.published) continue;
    std::ostringstream os;
    if (accounted < l.published) {
      os << "lost blocks: iteration " << it << " published " << l.published
         << " but only " << accounted << " accounted for (persisted "
         << l.persisted << ", superseded " << l.superseded
         << ", failed " << l.failed_persist << ")";
    } else {
      os << "over-persisted: iteration " << it << " published "
         << l.published << " but " << accounted
         << " accounted for (persisted " << l.persisted << ", superseded "
         << l.superseded << ", failed " << l.failed_persist << ")";
    }
    rep.violations.push_back(os.str());
  }
  for (const shm::SharedBuffer* buf : buffers_) {
    if (const Bytes used = buf->used(); used != 0) {
      std::ostringstream os;
      os << "block leak: shared buffer still holds " << used
         << " bytes after the run drained";
      rep.violations.push_back(os.str());
    }
  }
  return rep;
}

std::string FaultChecker::Report::to_string() const {
  std::ostringstream os;
  os << "fault accounting: published " << published << ", persisted "
     << persisted << ", superseded " << superseded << ", failed persists "
     << failed_persists << ", sync " << sync_written << ", dropped "
     << dropped << ", failed writes " << failed_writes << ", retries "
     << retries << "\n";
  if (violations.empty()) {
    os << "fault accounting clean\n";
  } else {
    for (const std::string& v : violations) os << "VIOLATION: " << v << "\n";
  }
  return os.str();
}

}  // namespace dmr::check

// Write-pipeline protocol checker.
//
// The staged write path (src/iopath/) has an ordering invariant that
// mirrors the shm block lifecycle checked by ProtocolChecker: a
// WriteRequest traverses stage kinds monotonically in the canonical
// order Ingest → Transform → Schedule → Transport → Storage, and only a
// Transform stage may change the payload size. A composition that
// violates this (e.g. compressing after the bytes already hit storage,
// or a scheduler that reorders behind the storage stage) produces
// numbers that silently stop meaning what the figures claim.
//
// StageOrderChecker is an iopath::PipelineObserver in the exact mould
// of the shm checker: attach it with WritePipeline::set_observer, run
// the workload, then read violations() / report(). It records, never
// crashes.
//
//   check::StageOrderChecker chk;
//   pipeline.set_observer(&chk);
//   ... run the experiment ...
//   assert(chk.violation_count() == 0);
//
// Thread-safety: internally mutex-locked, so one checker may observe
// several pipelines driven from different threads; read violations()
// after the traced workload quiesced.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "iopath/stage.hpp"

namespace dmr::check {

enum class PipelineViolationKind {
  kOutOfOrderStage,    // stage kind lower than one already traversed
  kResizeOutsideTransform,  // payload changed in a non-Transform stage
  kGrowingTransform,   // a Transform stage *grew* the payload
  kNegativeDuration,   // stage reported a negative simulated duration
};

std::string_view pipeline_violation_name(PipelineViolationKind k);

struct PipelineViolation {
  PipelineViolationKind kind{};
  int source = -1;  // rank / writer id of the request
  int phase = -1;
  iopath::StageKind stage{};
  std::string detail;

  std::string to_string() const;
};

class StageOrderChecker : public iopath::PipelineObserver {
 public:
  StageOrderChecker() = default;

  StageOrderChecker(const StageOrderChecker&) = delete;
  StageOrderChecker& operator=(const StageOrderChecker&) = delete;

  // --- iopath::PipelineObserver ---
  void on_request_begin(const iopath::WriteRequest& req) override;
  void on_stage_end(iopath::StageKind kind, const iopath::WriteRequest& req,
                    SimTime seconds, Bytes bytes_in,
                    Bytes bytes_out) override;
  void on_request_end(const iopath::WriteRequest& req) override;

  std::vector<PipelineViolation> violations() const;
  std::size_t violation_count() const;
  /// Requests fully traversed (begin + end seen).
  std::uint64_t requests_checked() const;

  /// Human-readable multi-line summary ("pipeline clean" when empty).
  std::string report() const;

 private:
  void record(PipelineViolationKind kind, const iopath::WriteRequest& req,
              iopath::StageKind stage, std::string detail)
      DMR_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// Highest stage kind seen so far per in-flight (source, phase).
  std::map<std::pair<int, int>, int> last_stage_ DMR_GUARDED_BY(mutex_);
  std::vector<PipelineViolation> violations_ DMR_GUARDED_BY(mutex_);
  std::uint64_t requests_ DMR_GUARDED_BY(mutex_) = 0;
};

}  // namespace dmr::check

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "shm/event_queue.hpp"
#include "shm/shared_buffer.hpp"

namespace dmr::shm {
namespace {

// ---------------------------------------------------------- first fit

TEST(FirstFit, AllocateAndUse) {
  SharedBuffer buf(1024, AllocPolicy::kMutexFirstFit, 4);
  auto r = buf.allocate(128, 0);
  ASSERT_TRUE(r.is_ok());
  Block b = r.value();
  EXPECT_EQ(b.size, 128u);
  std::memset(buf.data(b), 0xAB, b.size);
  EXPECT_EQ(buf.used(), 128u);
  buf.deallocate(b);
  EXPECT_EQ(buf.used(), 0u);
}

TEST(FirstFit, ZeroSizeRejected) {
  SharedBuffer buf(1024, AllocPolicy::kMutexFirstFit, 1);
  EXPECT_FALSE(buf.allocate(0, 0).is_ok());
}

TEST(FirstFit, BadClientRejected) {
  SharedBuffer buf(1024, AllocPolicy::kMutexFirstFit, 2);
  EXPECT_FALSE(buf.allocate(16, -1).is_ok());
  EXPECT_FALSE(buf.allocate(16, 2).is_ok());
}

TEST(FirstFit, ExhaustionFails) {
  SharedBuffer buf(256, AllocPolicy::kMutexFirstFit, 1);
  auto a = buf.allocate(200, 0);
  ASSERT_TRUE(a.is_ok());
  auto b = buf.allocate(100, 0);
  EXPECT_FALSE(b.is_ok());
  EXPECT_EQ(b.status().code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(buf.failed_allocations(), 1u);
}

TEST(FirstFit, FreeMakesSpaceAgain) {
  SharedBuffer buf(256, AllocPolicy::kMutexFirstFit, 1);
  auto a = buf.allocate(200, 0);
  ASSERT_TRUE(a.is_ok());
  buf.deallocate(a.value());
  EXPECT_TRUE(buf.allocate(256, 0).is_ok());  // full coalesced capacity
}

TEST(FirstFit, CoalescingBothSides) {
  SharedBuffer buf(300, AllocPolicy::kMutexFirstFit, 1);
  auto a = buf.allocate(100, 0);
  auto b = buf.allocate(100, 0);
  auto c = buf.allocate(100, 0);
  ASSERT_TRUE(a.is_ok() && b.is_ok() && c.is_ok());
  buf.deallocate(a.value());
  buf.deallocate(c.value());
  buf.deallocate(b.value());  // middle last: must merge into one region
  EXPECT_TRUE(buf.allocate(300, 0).is_ok());
}

TEST(FirstFit, BlocksDoNotOverlap) {
  SharedBuffer buf(4096, AllocPolicy::kMutexFirstFit, 1);
  Rng rng(3);
  std::vector<Block> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.chance(0.6)) {
      auto r = buf.allocate(1 + rng.next_below(128), 0);
      if (r.is_ok()) live.push_back(r.value());
    } else {
      std::size_t i = rng.next_below(live.size());
      buf.deallocate(live[i]);
      live.erase(live.begin() + i);
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      for (std::size_t j = i + 1; j < live.size(); ++j) {
        const Block& x = live[i];
        const Block& y = live[j];
        EXPECT_TRUE(x.offset + x.size <= y.offset ||
                    y.offset + y.size <= x.offset)
            << "overlap at step " << step;
      }
    }
  }
}

TEST(FirstFit, PeakTracksHighWater) {
  SharedBuffer buf(1024, AllocPolicy::kMutexFirstFit, 1);
  auto a = buf.allocate(400, 0);
  auto b = buf.allocate(300, 0);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  buf.deallocate(a.value());
  buf.deallocate(b.value());
  EXPECT_EQ(buf.peak_used(), 700u);
  EXPECT_EQ(buf.used(), 0u);
}

TEST(FirstFit, ConcurrentClientsNoCorruption) {
  SharedBuffer buf(1 * MiB, AllocPolicy::kMutexFirstFit, 8);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(100 + c);
      for (int i = 0; i < 500; ++i) {
        auto r = buf.allocate(64 + rng.next_below(512), c);
        if (!r.is_ok()) continue;
        Block b = r.value();
        std::memset(buf.data(b), c, b.size);
        // Verify our bytes survived concurrent activity.
        for (Bytes k = 0; k < b.size; ++k) {
          if (buf.data(b)[k] != static_cast<std::byte>(c)) {
            errors.fetch_add(1);
            break;
          }
        }
        buf.deallocate(b);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(buf.used(), 0u);
}

// --------------------------------------------------------- partitioned

TEST(Partitioned, EachClientGetsOwnRegion) {
  SharedBuffer buf(1000, AllocPolicy::kPartitioned, 4);
  auto a = buf.allocate(100, 0);
  auto b = buf.allocate(100, 1);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  // Client 1's region starts at capacity/4 = 250.
  EXPECT_EQ(a.value().offset, 0u);
  EXPECT_EQ(b.value().offset, 250u);
}

TEST(Partitioned, PartitionExhaustion) {
  SharedBuffer buf(1000, AllocPolicy::kPartitioned, 4);
  auto a = buf.allocate(200, 0);
  ASSERT_TRUE(a.is_ok());
  // 250-byte partition has 50 left.
  EXPECT_FALSE(buf.allocate(100, 0).is_ok());
  // Other clients unaffected.
  EXPECT_TRUE(buf.allocate(250, 1).is_ok());
}

TEST(Partitioned, RewindsWhenDrained) {
  SharedBuffer buf(1000, AllocPolicy::kPartitioned, 4);
  for (int round = 0; round < 10; ++round) {
    auto r = buf.allocate(200, 2);
    ASSERT_TRUE(r.is_ok()) << "round " << round;
    buf.deallocate(r.value());
  }
  EXPECT_EQ(buf.failed_allocations(), 0u);
}

TEST(Partitioned, NoRewindWhileLive) {
  SharedBuffer buf(1000, AllocPolicy::kPartitioned, 4);
  auto a = buf.allocate(150, 0);
  ASSERT_TRUE(a.is_ok());
  auto b = buf.allocate(100, 0);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().offset, 150u);  // bump, not rewind
  buf.deallocate(a.value());
  // Still one live block: next allocation must not reuse [0,150).
  auto c = buf.allocate(1, 0);
  EXPECT_FALSE(c.is_ok());  // 250-partition: 150+100 consumed, no rewind
}

TEST(Partitioned, ProducerConsumerPipeline) {
  // One client producing, one "server" thread consuming: the paper's
  // per-iteration pattern. No allocation may fail once steady state
  // holds (buffer sized for 2 iterations in flight).
  SharedBuffer buf(4096, AllocPolicy::kPartitioned, 1);
  EventQueue queue;
  std::atomic<int> consumed{0};
  std::thread server([&] {
    while (auto m = queue.pop()) {
      buf.deallocate(m->block);
      consumed.fetch_add(1);
    }
  });
  int failures = 0;
  for (int i = 0; i < 2000; ++i) {
    auto r = buf.allocate(512, 0);
    if (!r.is_ok()) {
      ++failures;
      // Buffer full: wait for the server to drain (Damaris clients would
      // block or drop depending on policy).
      while (buf.used() != 0) std::this_thread::yield();
      continue;
    }
    Message m;
    m.type = MessageType::kWriteNotification;
    m.block = r.value();
    ASSERT_TRUE(queue.push(m));
  }
  queue.close();
  server.join();
  EXPECT_EQ(consumed.load() + failures, 2000);
  EXPECT_EQ(buf.used(), 0u);
}

// ------------------------------------------- allocator property sweep

struct AllocParam {
  AllocPolicy policy;
  int clients;
  Bytes capacity;
};

class AllocatorProperty : public ::testing::TestWithParam<AllocParam> {};

TEST_P(AllocatorProperty, UsedNeverExceedsCapacityAndFreesRestore) {
  const AllocParam p = GetParam();
  SharedBuffer buf(p.capacity, p.policy, p.clients);
  Rng rng(42);
  std::vector<Block> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      const int client = static_cast<int>(rng.next_below(p.clients));
      auto r = buf.allocate(1 + rng.next_below(256), client);
      if (r.is_ok()) live.push_back(r.value());
    } else {
      const std::size_t i = rng.next_below(live.size());
      buf.deallocate(live[i]);
      live.erase(live.begin() + i);
    }
    EXPECT_LE(buf.used(), p.capacity);
    Bytes live_total = 0;
    for (const auto& b : live) live_total += b.size;
    EXPECT_EQ(buf.used(), live_total);
  }
  for (const auto& b : live) buf.deallocate(b);
  EXPECT_EQ(buf.used(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllocatorProperty,
    ::testing::Values(
        AllocParam{AllocPolicy::kMutexFirstFit, 1, 8 * KiB},
        AllocParam{AllocPolicy::kMutexFirstFit, 4, 16 * KiB},
        AllocParam{AllocPolicy::kMutexFirstFit, 16, 64 * KiB},
        AllocParam{AllocPolicy::kPartitioned, 1, 8 * KiB},
        AllocParam{AllocPolicy::kPartitioned, 4, 16 * KiB},
        AllocParam{AllocPolicy::kPartitioned, 16, 64 * KiB}));

// ----------------------------------------------------------- event queue

TEST(EventQueue, PushPopFifo) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.iteration = i;
    ASSERT_TRUE(q.push(m));
  }
  for (int i = 0; i < 5; ++i) {
    auto m = q.try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->iteration, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(EventQueue, PopBlocksUntilPush) {
  EventQueue q;
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto m = q.pop();
    if (m && m->iteration == 42) got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Message m;
  m.iteration = 42;
  ASSERT_TRUE(q.push(m));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(EventQueue, CloseDrainsThenEnds) {
  EventQueue q;
  Message m;
  m.iteration = 1;
  ASSERT_TRUE(q.push(m));
  q.close();
  EXPECT_TRUE(q.pop().has_value());   // drains queued message
  EXPECT_FALSE(q.pop().has_value());  // then reports closed
}

TEST(EventQueue, PushAfterCloseIsDropped) {
  EventQueue q;
  Message before;
  before.iteration = 1;
  EXPECT_TRUE(q.push(before));
  q.close();
  Message after;
  after.iteration = 2;
  EXPECT_FALSE(q.push(after));  // dropped, not queued
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.pushed(), 1u);  // only the pre-close message counts
  auto m = q.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->iteration, 1);
  EXPECT_FALSE(q.pop().has_value());  // the dropped message never appears
}

TEST(EventQueue, CloseWakesAllBlockedPoppers) {
  EventQueue q;
  constexpr int kPoppers = 4;
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> poppers;
  for (int i = 0; i < kPoppers; ++i) {
    poppers.emplace_back([&] {
      if (!q.pop().has_value()) woke_empty.fetch_add(1);
    });
  }
  // Give every popper a chance to block on the condvar, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(woke_empty.load(), kPoppers);
}

TEST(EventQueue, DrainAfterClosePreservesFifoOrder) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.iteration = i;
    ASSERT_TRUE(q.push(m));
  }
  q.close();
  EXPECT_TRUE(q.closed());
  for (int i = 0; i < 10; ++i) {
    auto m = q.pop();
    ASSERT_TRUE(m.has_value()) << "message " << i << " lost by close()";
    EXPECT_EQ(m->iteration, i);
  }
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(EventQueue, CloseIsIdempotent) {
  EventQueue q;
  Message m;
  ASSERT_TRUE(q.push(m));
  q.close();
  q.close();  // second close must not disturb the drain
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, MultiProducerCountsMatch) {
  EventQueue q;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  std::atomic<int> received{0};
  std::thread consumer([&] {
    while (q.pop()) received.fetch_add(1);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Message m;
        m.client_id = p;
        m.iteration = i;
        ASSERT_TRUE(q.push(m));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  EXPECT_EQ(q.pushed(), static_cast<std::uint64_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace dmr::shm

// Section V-A: "Are all cores really needed for computation?" — the
// analytic break-even model, plus a simulation-backed validation.
//
// Paper: assuming optimal parallelization over N cores per node and the
// worst case W_ded = N * W_std, dedicating one core breaks even when the
// application spends p = 100/(N-1) percent of its time in I/O; with 24
// cores p = 4.35%, already below the ~5% rule-of-thumb I/O budget. In
// practice (§IV-C3) the dedicated core writes *fewer, larger* requests,
// so W_ded is far below N * W_std and the benefit appears much earlier.
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/experiments.hpp"

using namespace dmr;
using strategies::RunConfig;
using strategies::StrategyKind;

int main() {
  bench::banner("Section V-A — break-even I/O fraction model",
                "Section V-A analysis",
                "p = 100/(N-1); 24 cores -> 4.35%; under the 5% rule of "
                "thumb a dedicated core pays off");

  Table t({"cores/node (N)", "break-even p (%)", "beats 5% budget"});
  for (int n : {4, 8, 12, 16, 24, 32, 48, 64}) {
    const double p = experiments::breakeven_io_percent(n);
    t.add_row({std::to_string(n), Table::num(p, 2), p < 5.0 ? "yes" : "no"});
  }
  t.print();

  // The inequality, on both the paper's worst case (W_ded = N * W_std)
  // and the measured regime (W_ded ~ W_std thanks to request
  // aggregation). The worst-case margin crosses zero exactly at
  // p = 100/(N-1); realistically the benefit shows up for any p above
  // the reparallelization overhead.
  std::printf("\nBenefit margin W_std+C_std - max(C_ded, W_ded), C_std = "
              "100 s (positive = dedicating a core wins):\n");
  Table v({"N", "I/O fraction p (%)", "worst-case margin (s)",
           "measured-case margin (s)"});
  for (int n : {12, 24}) {
    for (double pct : {2.0, 4.0, 100.0 / (n - 1), 6.0, 10.0, 20.0}) {
      const double c_std = 100.0;
      const double w_std = c_std * pct / 100.0;
      v.add_row({std::to_string(n), Table::num(pct, 2),
                 Table::num(experiments::dedicated_core_margin(
                                w_std, c_std, n, n * w_std),
                            2),
                 Table::num(experiments::dedicated_core_margin(w_std, c_std,
                                                               n, w_std),
                            2)});
    }
  }
  v.print();

  // Simulation validation on a Kraken slice: sweep the I/O fraction by
  // changing the output cadence; the per-iteration cost crossover should
  // sit near the analytic break-even (9.09% for N = 12).
  std::printf("\nSimulated validation (Kraken, 1152 cores, N = 12, "
              "analytic break-even p = %.2f%%):\n",
              experiments::breakeven_io_percent(12));
  Table s({"write interval (iters)", "std io fraction (%)",
           "fpp time/iter (s)", "damaris time/iter (s)", "damaris wins"});
  for (int interval : {200, 100, 50, 20, 5, 1}) {
    const int iterations = interval;  // exactly one write phase per run
    auto mk = [&](StrategyKind kind) {
      RunConfig cfg = experiments::kraken_config(kind, 1152, iterations,
                                                 interval);
      return run_strategy(cfg);
    };
    auto fpp = mk(StrategyKind::kFilePerProcess);
    auto dam = mk(StrategyKind::kDamaris);
    const double fpp_iter = fpp.total_runtime / iterations;
    const double dam_iter = dam.total_runtime / iterations;
    const double io_frac =
        fpp.phase_seconds.mean() / fpp.total_runtime * 100.0;
    s.add_row({std::to_string(interval), Table::num(io_frac, 2),
               Table::num(fpp_iter, 2), Table::num(dam_iter, 2),
               dam_iter < fpp_iter ? "yes" : "no"});
  }
  s.print();
  return 0;
}

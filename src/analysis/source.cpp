#include "analysis/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dmr::analysis {

std::string strip_comments_and_strings(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar } st = St::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') st = St::kLine;
        else if (c == '/' && n == '*') st = St::kBlock;
        else if (c == '"') st = St::kStr;
        else if (c == '\'') st = St::kChar;
        if (st == St::kLine || st == St::kBlock) out[i] = ' ';
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && n == '/') { out[i] = out[i + 1] = ' '; ++i; st = St::kCode; }
        else if (c != '\n') out[i] = ' ';
        break;
      case St::kStr:
      case St::kChar: {
        const char quote = st == St::kStr ? '"' : '\'';
        if (c == '\\') { if (c != '\n') out[i] = ' '; if (n != '\n') out[i + 1] = ' '; ++i; }
        else if (c == quote) st = St::kCode;
        else if (c != '\n') out[i] = ' ';
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool looks_like_function_header(const std::string& seg) {
  if (seg.find('(') == std::string::npos) return false;
  static const char* kContainers[] = {"namespace", "class ", "struct ",
                                      "enum ", "union "};
  for (const char* kw : kContainers)
    if (seg.find(kw) != std::string::npos) return false;
  // A '=' outside parentheses is an initializer (`auto x = f(...)`,
  // brace-init), not a function header; one inside is a default
  // argument (`f(int n = 1)`) and does not disqualify.
  if (seg.find("operator") == std::string::npos) {
    int depth = 0;
    for (const char c : seg) {
      if (c == '(' || c == '[') ++depth;
      else if (c == ')' || c == ']') --depth;
      else if (c == '=' && depth == 0) return false;
    }
  }
  return true;
}

namespace {

std::string function_name_of(const std::string& seg) {
  const std::size_t paren = seg.find('(');
  if (paren == std::string::npos || paren == 0) return "?";
  std::size_t end = paren;
  while (end > 0 && std::isspace(static_cast<unsigned char>(seg[end - 1])))
    --end;
  std::size_t begin = end;
  while (begin > 0) {
    const char c = seg[begin - 1];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
        c == '~')
      --begin;
    else
      break;
  }
  return begin == end ? "?" : seg.substr(begin, end - begin);
}

}  // namespace

std::vector<Function> extract_functions(const std::string& stripped) {
  std::vector<Function> fns;
  std::string seg;
  std::size_t seg_off = 0;  // offset where the current segment started
  int line = 1;
  int depth = 0;      // brace depth outside any function
  int fn_depth = -1;  // depth at which the current function opened
  Function cur;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '\n') ++line;
    if (fn_depth >= 0) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == fn_depth) {
          cur.body_end = i;
          fns.push_back(cur);
          cur = Function{};
          fn_depth = -1;
          seg.clear();
          seg_off = i + 1;
          continue;
        }
      }
      cur.body += c;
      continue;
    }
    if (c == '{') {
      if (looks_like_function_header(seg)) {
        cur.name = function_name_of(seg);
        cur.tail = tail_name(cur.name);
        cur.line = line;
        cur.header = seg;
        cur.header_off = seg_off;
        cur.body_off = i + 1;
        fn_depth = depth;
      }
      ++depth;
      seg.clear();
      seg_off = i + 1;
    } else if (c == '}') {
      --depth;
      seg.clear();
      seg_off = i + 1;
    } else if (c == ';') {
      seg.clear();
      seg_off = i + 1;
    } else {
      seg += c;
    }
  }
  return fns;
}

int line_of_offset(const std::string& text, std::size_t off) {
  off = std::min(off, text.size());
  return 1 + static_cast<int>(std::count(
                 text.begin(),
                 text.begin() + static_cast<std::ptrdiff_t>(off), '\n'));
}

int line_in_body(const Function& fn, std::size_t off) {
  off = std::min(off, fn.body.size());
  return fn.line + static_cast<int>(std::count(
                       fn.body.begin(),
                       fn.body.begin() + static_cast<std::ptrdiff_t>(off),
                       '\n'));
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string tail_name(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

std::size_t match_forward(const std::string& text, std::size_t open,
                          char open_ch, char close_ch) {
  if (open >= text.size() || text[open] != open_ch) return std::string::npos;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    else if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::string strip_template_args(const std::string& seg) {
  std::string out;
  int depth = 0;
  for (char c : seg) {
    if (c == '<') { ++depth; continue; }
    if (c == '>') { if (depth > 0) --depth; continue; }
    if (depth == 0) out += c;
  }
  return out;
}

}  // namespace dmr::analysis

file(REMOVE_RECURSE
  "CMakeFiles/model_breakeven.dir/model_breakeven.cpp.o"
  "CMakeFiles/model_breakeven.dir/model_breakeven.cpp.o.d"
  "model_breakeven"
  "model_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <gtest/gtest.h>

#include "config/config.hpp"
#include "config/xml.hpp"

namespace dmr::config {
namespace {

// ------------------------------------------------------------------- xml

TEST(Xml, SimpleElement) {
  auto r = parse_xml("<root/>");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().name, "root");
  EXPECT_TRUE(r.value().children.empty());
}

TEST(Xml, Attributes) {
  auto r = parse_xml(R"(<layout name="my_layout" type='real' dimensions="64,16,2"/>)");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().attr_or("name", ""), "my_layout");
  EXPECT_EQ(r.value().attr_or("type", ""), "real");
  EXPECT_EQ(r.value().attr_or("dimensions", ""), "64,16,2");
  EXPECT_EQ(r.value().attr("missing"), nullptr);
  EXPECT_EQ(r.value().attr_or("missing", "dflt"), "dflt");
}

TEST(Xml, NestedChildren) {
  auto r = parse_xml(R"(
    <damaris>
      <layout name="a"/>
      <variable name="v1"/>
      <variable name="v2"/>
    </damaris>)");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().children.size(), 3u);
  EXPECT_NE(r.value().child("layout"), nullptr);
  EXPECT_EQ(r.value().children_named("variable").size(), 2u);
  EXPECT_EQ(r.value().child("nope"), nullptr);
}

TEST(Xml, TextContent) {
  auto r = parse_xml("<msg>hello &amp; goodbye</msg>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().text, "hello & goodbye");
}

TEST(Xml, CommentsAndDeclarationsSkipped) {
  auto r = parse_xml(R"(<?xml version="1.0"?>
    <!-- preamble -->
    <root><!-- inner --><child/></root>
    <!-- trailing -->)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().children.size(), 1u);
}

TEST(Xml, EntitiesInAttributes) {
  auto r = parse_xml(R"(<e v="&lt;a&gt;&quot;&apos;"/>)");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().attr_or("v", ""), "<a>\"'");
}

TEST(Xml, Errors) {
  EXPECT_FALSE(parse_xml("").is_ok());
  EXPECT_FALSE(parse_xml("<a>").is_ok());                  // unterminated
  EXPECT_FALSE(parse_xml("<a></b>").is_ok());              // mismatched
  EXPECT_FALSE(parse_xml("<a x=1/>").is_ok());             // unquoted attr
  EXPECT_FALSE(parse_xml("<a/><b/>").is_ok());             // two roots
  EXPECT_FALSE(parse_xml("<a>&bogus;</a>").is_ok());       // bad entity
  EXPECT_FALSE(parse_xml("just text").is_ok());
}

TEST(Xml, ErrorMentionsLine) {
  auto r = parse_xml("<a>\n\n<b x=3/></a>");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

// ---------------------------------------------------------------- config

const char* kPaperExample = R"(
<damaris>
  <buffer size="1048576" policy="partitioned"/>
  <dedicated cores="1"/>
  <layout name="my_layout" type="real" dimensions="64,16,2"
          language="fortran"/>
  <variable name="my_variable" layout="my_layout"/>
  <event name="my_event" action="do_something" using="my_plugin"
         scope="local"/>
</damaris>)";

TEST(Config, ParsesPaperExample) {
  auto r = Config::from_string(kPaperExample);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const Config& c = r.value();
  EXPECT_EQ(c.buffer_size(), 1048576u);
  EXPECT_EQ(c.buffer_policy(), "partitioned");
  EXPECT_EQ(c.dedicated_cores(), 1);

  const LayoutDecl* l = c.find_layout("my_layout");
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->layout.type, format::DataType::kFloat32);  // "real"
  EXPECT_EQ(l->layout.dims, (std::vector<std::uint64_t>{64, 16, 2}));
  EXPECT_TRUE(l->fortran_order);

  const VariableDecl* v = c.find_variable("my_variable");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->layout_name, "my_layout");

  const EventDecl* e = c.find_event("my_event");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->action, "do_something");
  EXPECT_EQ(e->plugin, "my_plugin");
  EXPECT_EQ(e->scope, "local");

  const format::Layout* resolved = c.layout_of("my_variable");
  ASSERT_NE(resolved, nullptr);
  EXPECT_EQ(resolved->byte_size(), 64u * 16 * 2 * 4);
}

TEST(Config, Defaults) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().buffer_size(), 64 * MiB);
  EXPECT_EQ(r.value().buffer_policy(), "firstfit");
  EXPECT_EQ(r.value().dedicated_cores(), 1);
}

TEST(Config, VariablePipelines) {
  auto r = Config::from_string(R"(
    <damaris>
      <layout name="l" type="float32" dimensions="8"/>
      <variable name="raw" layout="l"/>
      <variable name="packed" layout="l" pipeline="lossless"/>
      <variable name="viz" layout="l" pipeline="visualization"/>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().find_variable("raw")->pipeline, "");
  EXPECT_EQ(r.value().find_variable("packed")->pipeline, "lossless");
  EXPECT_EQ(r.value().find_variable("viz")->pipeline, "visualization");
}

TEST(Config, RejectsBadRoot) {
  EXPECT_FALSE(Config::from_string("<other/>").is_ok());
}

TEST(Config, RejectsUnknownLayoutReference) {
  auto r = Config::from_string(R"(
    <damaris><variable name="v" layout="ghost"/></damaris>)");
  EXPECT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("ghost"), std::string::npos);
}

TEST(Config, RejectsBadDimensions) {
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><layout name="l" type="real" dimensions="8,,2"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><layout name="l" type="real" dimensions="0"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><layout name="l" type="real" dimensions="abc"/></damaris>)")
                   .is_ok());
}

TEST(Config, RejectsUnknownType) {
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><layout name="l" type="complex" dimensions="4"/></damaris>)")
                   .is_ok());
}

TEST(Config, RejectsDuplicates) {
  EXPECT_FALSE(Config::from_string(R"(
    <damaris>
      <layout name="l" type="real" dimensions="4"/>
      <layout name="l" type="real" dimensions="8"/>
    </damaris>)")
                   .is_ok());
}

TEST(Config, RejectsBadPolicyAndScopeAndPipeline) {
  EXPECT_FALSE(
      Config::from_string(R"(<damaris><buffer policy="magic"/></damaris>)")
          .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><event name="e" action="a" scope="universe"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris>
      <layout name="l" type="real" dimensions="4"/>
      <variable name="v" layout="l" pipeline="zip"/>
    </damaris>)")
                   .is_ok());
}

TEST(Config, RejectsEventWithoutAction) {
  EXPECT_FALSE(
      Config::from_string(R"(<damaris><event name="e"/></damaris>)").is_ok());
}

TEST(Config, ParsesFaultPlan) {
  auto r = Config::from_string(R"(
    <damaris>
      <fault seed="42">
        <inject site="storage.write" rate="0.25"/>
        <inject site="shm.exhaust" at="5" for="2"/>
        <inject site="server.slow" at="1" for="10" factor="4"/>
        <inject site="core.crash" at="3" for="1" stall="0.01"/>
      </fault>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const fault::FaultPlan& plan = r.value().fault_plan();
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.faults.size(), 4u);
  EXPECT_EQ(plan.faults[0].site, fault::Site::kStorageWrite);
  EXPECT_DOUBLE_EQ(plan.faults[0].rate, 0.25);
  EXPECT_EQ(plan.faults[1].site, fault::Site::kShmExhaust);
  EXPECT_DOUBLE_EQ(plan.faults[1].window_start, 5.0);
  EXPECT_DOUBLE_EQ(plan.faults[1].window_length, 2.0);
  EXPECT_DOUBLE_EQ(plan.faults[2].factor, 4.0);
  EXPECT_DOUBLE_EQ(plan.faults[3].stall_seconds, 0.01);
  EXPECT_TRUE(plan.validate().is_ok());
}

TEST(Config, FaultPlanDefaultsEmpty) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().fault_plan().empty());
  // Resilience defaults reproduce the historical behaviour.
  const fault::ResilienceConfig& res = r.value().resilience();
  EXPECT_FALSE(res.retry.enabled());
  EXPECT_FALSE(res.degrade.allow_sync);
  EXPECT_FALSE(res.degrade.allow_drop);
  EXPECT_EQ(res.degrade.block_timeout_ms, -1);
}

TEST(Config, RejectsMalformedFaultPlans) {
  // Unknown site.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject site="disk.melt" rate="0.5"/></fault></damaris>)")
                   .is_ok());
  // Missing site.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject rate="0.5"/></fault></damaris>)")
                   .is_ok());
  // Rate out of range.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject site="storage.write" rate="1.5"/></fault></damaris>)")
                   .is_ok());
  // Window without a length.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject site="shm.exhaust" at="5"/></fault></damaris>)")
                   .is_ok());
  // Neither rate nor window.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject site="storage.write"/></fault></damaris>)")
                   .is_ok());
  // Degradation factor below 1.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault>
      <inject site="server.slow" at="0" for="5" factor="0.5"/>
    </fault></damaris>)")
                   .is_ok());
  // Unparseable seed / numeric junk.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault seed="banana">
      <inject site="storage.write" rate="0.5"/>
    </fault></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><fault><inject site="storage.write" rate="0.5x"/></fault></damaris>)")
                   .is_ok());
}

TEST(Config, ParsesResilience) {
  auto r = Config::from_string(R"(
    <damaris>
      <resilience>
        <retry attempts="6" base_delay="0.001" max_delay="0.05" deadline="2"/>
        <degrade block_timeout_ms="50" sync="true" drop="true"
                 trip="1" clear="4"/>
      </resilience>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const fault::ResilienceConfig& res = r.value().resilience();
  EXPECT_EQ(res.retry.max_attempts, 6);
  EXPECT_DOUBLE_EQ(res.retry.base_delay, 0.001);
  EXPECT_DOUBLE_EQ(res.retry.max_delay, 0.05);
  EXPECT_DOUBLE_EQ(res.retry.deadline, 2.0);
  EXPECT_EQ(res.degrade.block_timeout_ms, 50);
  EXPECT_TRUE(res.degrade.allow_sync);
  EXPECT_TRUE(res.degrade.allow_drop);
  EXPECT_EQ(res.degrade.trip_threshold, 1);
  EXPECT_EQ(res.degrade.clear_threshold, 4);
}

TEST(Config, RejectsMalformedResilience) {
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience><retry attempts="0"/></resilience></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience><retry base_delay="0"/></resilience></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience>
      <retry base_delay="0.01" max_delay="0.001"/>
    </resilience></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience><degrade sync="maybe"/></resilience></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience><degrade trip="0"/></resilience></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><resilience><degrade block_timeout_ms="-2"/></resilience></damaris>)")
                   .is_ok());
}

TEST(Config, ParsesScheduling) {
  auto r = Config::from_string(R"(
    <damaris><scheduling alpha="0.5" adaptive="true"/></damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_DOUBLE_EQ(r.value().scheduling().alpha, 0.5);
  EXPECT_TRUE(r.value().scheduling().adaptive);
}

TEST(Config, SchedulingDefaults) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().scheduling().alpha, sched::kDefaultAlpha);
  EXPECT_FALSE(r.value().scheduling().adaptive);
  // An empty <scheduling/> keeps the defaults too.
  auto empty = Config::from_string("<damaris><scheduling/></damaris>");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_DOUBLE_EQ(empty.value().scheduling().alpha, sched::kDefaultAlpha);
  EXPECT_FALSE(empty.value().scheduling().adaptive);
}

TEST(Config, SchedulingAlphaBoundaryOneIsValid) {
  auto r = Config::from_string(R"(
    <damaris><scheduling alpha="1.0"/></damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_DOUBLE_EQ(r.value().scheduling().alpha, 1.0);
}

TEST(Config, RejectsMalformedScheduling) {
  // Out-of-range alphas are a config mistake, not something to clamp.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling alpha="0"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling alpha="-0.3"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling alpha="1.5"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling alpha="nan"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling alpha="abc"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><scheduling adaptive="maybe"/></damaris>)")
                   .is_ok());
}

// --------------------------------------------------- <plugins> section

TEST(Config, ParsesPlugins) {
  auto r = Config::from_string(R"(
    <damaris>
      <layout name="grid" type="float32" dimensions="8"/>
      <variable name="field" layout="grid"/>
      <variable name="aux" layout="grid"/>
      <plugins budget_ms="12.5" on_error="disable" on_overrun="warn">
        <plugin name="stats" type="statistics" variables="field,aux"/>
        <plugin name="down" type="downsample" variables="field" stride="16"/>
      </plugins>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const PluginsConfig& p = r.value().plugins();
  EXPECT_FALSE(p.empty());
  EXPECT_DOUBLE_EQ(p.budget_ms, 12.5);
  EXPECT_EQ(p.on_error, "disable");
  EXPECT_EQ(p.on_overrun, "warn");
  ASSERT_EQ(p.plugins.size(), 2u);
  EXPECT_EQ(p.plugins[0].name, "stats");
  EXPECT_EQ(p.plugins[0].type, "statistics");
  ASSERT_EQ(p.plugins[0].variables.size(), 2u);
  EXPECT_EQ(p.plugins[0].variables[1], "aux");
  EXPECT_EQ(p.plugins[1].stride, 16);
}

TEST(Config, PluginsDefaultEmpty) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().plugins().empty());

  auto empty_section = Config::from_string("<damaris><plugins/></damaris>");
  ASSERT_TRUE(empty_section.is_ok());
  EXPECT_TRUE(empty_section.value().plugins().empty());
}

TEST(Config, RejectsMalformedPlugins) {
  const char* bad[] = {
      // plugin without a name
      R"(<damaris><plugins><plugin type="statistics"/></plugins></damaris>)",
      // plugin without a type
      R"(<damaris><plugins><plugin name="p"/></plugins></damaris>)",
      // duplicate plugin names
      R"(<damaris><plugins>
           <plugin name="p" type="statistics"/>
           <plugin name="p" type="downsample"/>
         </plugins></damaris>)",
      // negative budget
      R"(<damaris><plugins budget_ms="-1"/></damaris>)",
      // unknown failure policy
      R"(<damaris><plugins on_error="explode"/></damaris>)",
      R"(<damaris><plugins on_overrun="explode"/></damaris>)",
      // stride below 1
      R"(<damaris><plugins>
           <plugin name="p" type="downsample" stride="0"/>
         </plugins></damaris>)",
      // empty token in the variable list
      R"(<damaris>
           <layout name="g" type="float32" dimensions="4"/>
           <variable name="v" layout="g"/>
           <plugins><plugin name="p" type="statistics" variables="v,"/>
           </plugins></damaris>)",
      // variables must name declared variables
      R"(<damaris><plugins>
           <plugin name="p" type="statistics" variables="ghost"/>
         </plugins></damaris>)",
  };
  for (const char* xml : bad) {
    EXPECT_FALSE(Config::from_string(xml).is_ok()) << xml;
  }
}

// --------------------------------------------------- <monitor> section

TEST(Config, ParsesMonitor) {
  auto r = Config::from_string(R"(
    <damaris>
      <monitor enabled="true" socket="/tmp/dmr.sock" interval_ms="250"
               slo_p95_ms="10" slo_max_ms="50"/>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const MonitorConfig& m = r.value().monitor();
  EXPECT_TRUE(m.enabled);
  EXPECT_EQ(m.socket, "/tmp/dmr.sock");
  EXPECT_EQ(m.interval_ms, 250);
  EXPECT_DOUBLE_EQ(m.slo_p95_ms, 10.0);
  EXPECT_DOUBLE_EQ(m.slo_max_ms, 50.0);
}

TEST(Config, MonitorDefaultsDisabled) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().monitor().enabled);
  EXPECT_EQ(r.value().monitor().interval_ms, 100);
}

TEST(Config, RejectsMalformedMonitor) {
  // enabled without a socket path
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><monitor enabled="true"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><monitor enabled="yes" socket="/tmp/x"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><monitor socket="/tmp/x" interval_ms="0"/></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><monitor socket="/tmp/x" slo_p95_ms="-2"/></damaris>)")
                   .is_ok());
}

// ------------------------------------------------------------- facility

TEST(Config, ParsesFacilitySection) {
  auto r = Config::from_string(R"(
    <damaris>
      <facility nodes="16" seed="7">
        <mds model="sharded" shards="8" replicas="2"/>
        <placement policy="elastic" slo_p95_ms="500" trip="2" clear="3"
                   staging_gib_s="4" group_servers="6"/>
        <tenants>
          <tenant id="1" name="cm1-a" arrival="0" nodes="4"
                  strategy="damaris" iterations="8" slo_p95_ms="400"/>
          <tenant id="2" arrival="30.5" nodes="2"
                  strategy="file-per-process"/>
        </tenants>
      </facility>
    </damaris>)");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const FacilityConfig& f = r.value().facility();
  EXPECT_TRUE(f.declared);
  EXPECT_EQ(f.nodes, 16);
  EXPECT_EQ(f.seed, 7u);
  EXPECT_EQ(f.mds_model, "sharded");
  EXPECT_EQ(f.mds_shards, 8);
  EXPECT_EQ(f.mds_replicas, 2);
  EXPECT_EQ(f.placement.policy, "elastic");
  EXPECT_DOUBLE_EQ(f.placement.slo_p95_ms, 500.0);
  EXPECT_EQ(f.placement.trip, 2);
  EXPECT_EQ(f.placement.clear, 3);
  EXPECT_DOUBLE_EQ(f.placement.staging_gib_s, 4.0);
  EXPECT_EQ(f.placement.group_servers, 6);
  ASSERT_EQ(f.tenants.size(), 2u);
  EXPECT_EQ(f.tenants[0].id, 1);
  EXPECT_EQ(f.tenants[0].name, "cm1-a");
  EXPECT_EQ(f.tenants[0].nodes, 4);
  EXPECT_EQ(f.tenants[0].strategy, "damaris");
  EXPECT_EQ(f.tenants[0].iterations, 8);
  EXPECT_DOUBLE_EQ(f.tenants[0].slo_p95_ms, 400.0);
  EXPECT_EQ(f.tenants[1].name, "tenant-2");  // defaulted
  EXPECT_DOUBLE_EQ(f.tenants[1].arrival, 30.5);
  EXPECT_EQ(f.tenants[1].strategy, "file-per-process");
}

TEST(Config, FacilityDefaultsUndeclared) {
  auto r = Config::from_string("<damaris/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_FALSE(r.value().facility().declared);
  // An empty declaration still flips `declared` and keeps the defaults.
  auto e = Config::from_string("<damaris><facility/></damaris>");
  ASSERT_TRUE(e.is_ok());
  EXPECT_TRUE(e.value().facility().declared);
  EXPECT_EQ(e.value().facility().mds_model, "serialized");
  EXPECT_EQ(e.value().facility().placement.policy, "static");
}

TEST(Config, RejectsMalformedFacility) {
  // Negative arrival time.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><tenants>
      <tenant id="1" arrival="-1"/>
    </tenants></facility></damaris>)")
                   .is_ok());
  // Duplicate tenant ids.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><tenants>
      <tenant id="1"/><tenant id="1"/>
    </tenants></facility></damaris>)")
                   .is_ok());
  // Tenant without an id.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><tenants><tenant/></tenants></facility></damaris>)")
                   .is_ok());
  // Unknown placement policy name.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility>
      <placement policy="greedy"/>
    </facility></damaris>)")
                   .is_ok());
  // Unknown mds model / strategy names.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><mds model="raided"/></facility></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><tenants>
      <tenant id="1" strategy="plfs"/>
    </tenants></facility></damaris>)")
                   .is_ok());
  // More replicas than shards.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><mds model="sharded" shards="2" replicas="3"/>
    </facility></damaris>)")
                   .is_ok());
  // Tenant larger than the facility.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility nodes="2"><tenants>
      <tenant id="1" nodes="4"/>
    </tenants></facility></damaris>)")
                   .is_ok());
  // Zero-valued ladder parameters and a bad seed.
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><placement trip="0"/></facility></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility><placement staging_gib_s="0"/></facility></damaris>)")
                   .is_ok());
  EXPECT_FALSE(Config::from_string(R"(
    <damaris><facility seed="0"/></damaris>)")
                   .is_ok());
}

}  // namespace
}  // namespace dmr::config

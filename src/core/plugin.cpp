#include "core/plugin.hpp"

namespace dmr::core {

void PluginRegistry::register_action(const std::string& name, PluginFn fn) {
  actions_[name] = std::move(fn);
}

const PluginFn* PluginRegistry::find(const std::string& name) const {
  auto it = actions_.find(name);
  return it == actions_.end() ? nullptr : &it->second;
}

}  // namespace dmr::core

file(REMOVE_RECURSE
  "libdmr_cm1.a"
)

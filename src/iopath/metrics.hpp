// Per-stage instrumentation: every pipeline keeps a PipelineStats and
// every stage execution lands in the StageCounters of its kind. The
// counters are what RunResult (DES world) and ServerStats (real
// runtime) expose, so a perf trajectory can compare "time in Transform"
// or "bytes into Storage" across PRs. (For per-*event* timelines rather
// than aggregates, the tracing layer of src/trace/ records each stage
// execution as a span.)
//
// Thread-safety: plain counters with no internal synchronization; each
// PipelineStats belongs to one pipeline and is mutated only by the
// thread driving it (a DES engine or one server thread). merge() the
// per-pipeline stats after the workload quiesced.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "iopath/stage.hpp"

namespace dmr::iopath {

/// Aggregate counters of one stage kind.
struct StageCounters {
  std::uint64_t ops = 0;
  SimTime seconds = 0.0;
  SimTime max_seconds = 0.0;
  Bytes bytes_in = 0;
  Bytes bytes_out = 0;

  void add(SimTime s, Bytes in, Bytes out);
  void merge(const StageCounters& other);

  SimTime mean_seconds() const {
    return ops == 0 ? 0.0 : seconds / static_cast<double>(ops);
  }
  /// Stage throughput over its busy time (bytes in per second).
  double bytes_per_second() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(bytes_in) / seconds;
  }
};

/// One counter block per stage kind.
struct PipelineStats {
  StageCounters stage[kNumStageKinds];

  StageCounters& of(StageKind k) { return stage[stage_index(k)]; }
  const StageCounters& of(StageKind k) const {
    return stage[stage_index(k)];
  }

  void merge(const PipelineStats& other);

  /// Total busy seconds across all stages.
  SimTime total_seconds() const;

  /// One line per active stage, e.g.
  /// "transform: ops=8 time=1.2s in=96MiB out=51.3MiB".
  std::string to_string() const;
};

}  // namespace dmr::iopath

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("des")
subdirs("cluster")
subdirs("fs")
subdirs("simmpi")
subdirs("shm")
subdirs("format")
subdirs("config")
subdirs("sched")
subdirs("core")
subdirs("cm1")
subdirs("strategies")
subdirs("experiments")
subdirs("postproc")
subdirs("vis")

// Determinism rules: the repo's jitter/equivalence proofs rest on
// bit-identical timelines (check/determinism.cpp digests, golden
// monitor JSON), so anything whose order depends on hash seeds,
// pointer values or the host clock is flagged before it can feed a
// digest, a trace lane, serialized monitor output or a floating-point
// accumulation (FP addition does not commute).
#include <cstddef>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/rules.hpp"

namespace dmr::analysis {

namespace {

/// Calls whose output is order-sensitive: digests, trace lanes,
/// serialized snapshots, published analytics.
const char* kSinks[] = {"fnv1a",          "digest",         "hash_combine",
                        "record_span",    "record_instant", "record_counter",
                        "to_json",        "publish_analytic", "serialize"};

/// Subsystems that run on simulated time; a wall-clock read reachable
/// from here makes replay depend on the host.
const char* kSimRoots[] = {"src/des/",    "src/strategies/", "src/cm1/",
                           "src/cluster/", "src/fs/",        "src/simmpi/",
                           "src/iopath/", "src/sched/"};

/// Actual wall-clock reads/sleeps (type mentions like std::chrono alone
/// are dmr_lint's clock-mixing territory, not a read).
const char* kWallTokens[] = {"wall_now",
                             "steady_clock::now",
                             "system_clock::now",
                             "high_resolution_clock::now",
                             "this_thread::sleep_for",
                             "clock_gettime",
                             "gettimeofday",
                             "timespec_get"};

const char* kSimTokens[] = {"SimTime", "sim_now"};

bool word_at(const std::string& s, std::size_t pos, std::size_t len) {
  if (pos > 0 && is_ident_char(s[pos - 1])) return false;
  const std::size_t end = pos + len;
  return end >= s.size() || !is_ident_char(s[end]);
}

/// Every word-boundary occurrence offset of `name` in `s`.
std::vector<std::size_t> word_occurrences(const std::string& s,
                                          const std::string& name) {
  std::vector<std::size_t> offs;
  for (std::size_t pos = s.find(name); pos != std::string::npos;
       pos = s.find(name, pos + 1))
    if (word_at(s, pos, name.size())) offs.push_back(pos);
  return offs;
}

// --- det-unordered-sink -------------------------------------------------

struct Loop {
  std::string container;
  std::size_t off = 0;      ///< offset of the `for` keyword in the body
  std::size_t body_b = 0;   ///< loop-body extent within fn.body
  std::size_t body_e = 0;
};

/// Trailing identifier of a container expression (`node.queues()` ->
/// queues, `free_by_offset_` -> itself).
std::string trailing_identifier(std::string expr) {
  std::size_t e = expr.size();
  auto skip_ws = [&] {
    while (e > 0 && std::isspace(static_cast<unsigned char>(expr[e - 1])))
      --e;
  };
  skip_ws();
  while (e >= 2 && expr[e - 1] == ')' && expr[e - 2] == '(') {
    e -= 2;
    skip_ws();
  }
  std::size_t b = e;
  while (b > 0 && is_ident_char(expr[b - 1])) --b;
  return expr.substr(b, e - b);
}

std::vector<Loop> find_loops(const Function& fn) {
  std::vector<Loop> loops;
  const std::string& b = fn.body;
  for (std::size_t pos = b.find("for"); pos != std::string::npos;
       pos = b.find("for", pos + 1)) {
    if (!word_at(b, pos, 3)) continue;
    std::size_t par = pos + 3;
    while (par < b.size() &&
           std::isspace(static_cast<unsigned char>(b[par])))
      ++par;
    if (par >= b.size() || b[par] != '(') continue;
    const std::size_t close = match_forward(b, par, '(', ')');
    if (close == std::string::npos) continue;
    const std::string head = b.substr(par + 1, close - par - 2);
    std::string container;
    // Range-for: a top-level ':' that is not part of '::'.
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '(' || c == '<' || c == '[') ++depth;
      else if (c == ')' || c == '>' || c == ']') --depth;
      else if (c == ':' && depth == 0) {
        const bool dbl = (i > 0 && head[i - 1] == ':') ||
                         (i + 1 < head.size() && head[i + 1] == ':');
        if (dbl) { ++i; continue; }
        container = trailing_identifier(head.substr(i + 1));
        break;
      }
    }
    if (container.empty()) {
      static const std::regex kIter(
          "=\\s*([A-Za-z_]\\w*)\\s*\\.\\s*c?begin\\s*\\(");
      std::smatch m;
      if (std::regex_search(head, m, kIter)) container = m[1].str();
    }
    if (container.empty()) continue;
    Loop l;
    l.container = container;
    l.off = pos;
    std::size_t k = close;
    while (k < b.size() && std::isspace(static_cast<unsigned char>(b[k])))
      ++k;
    if (k < b.size() && b[k] == '{') {
      const std::size_t e = match_forward(b, k, '{', '}');
      if (e == std::string::npos) continue;
      l.body_b = k + 1;
      l.body_e = e - 1;
    } else {
      const std::size_t e = b.find(';', k);
      if (e == std::string::npos) continue;
      l.body_b = k;
      l.body_e = e;
    }
    loops.push_back(l);
  }
  return loops;
}

/// Variables written inside the loop body — the taint set that may
/// carry unordered iteration order to a sink later in the function.
std::set<std::string> written_vars(const std::string& body) {
  std::set<std::string> vars;
  static const std::regex kAssign(
      "\\b([A-Za-z_]\\w*)\\s*(?:\\[[^\\]]*\\]\\s*)?"
      "(?:\\+=|-=|\\*=|/=|\\|=|&=|\\^=|=(?!=))");
  for (std::sregex_iterator it(body.begin(), body.end(), kAssign), end;
       it != end; ++it)
    vars.insert((*it)[1].str());
  static const std::regex kMutate(
      "\\b([A-Za-z_]\\w*)\\s*\\.\\s*"
      "(?:push_back|emplace_back|insert|emplace|append)\\s*\\(");
  for (std::sregex_iterator it(body.begin(), body.end(), kMutate), end;
       it != end; ++it)
    vars.insert((*it)[1].str());
  return vars;
}

void rule_unordered_sink(const TreeModel& m, const SourceFile& f,
                         std::vector<Finding>& out) {
  const auto uit = m.unit_unordered.find(f.unit);
  if (uit == m.unit_unordered.end() || uit->second.empty()) return;
  const std::set<std::string>& unordered = uit->second;
  for (const Function& fn : f.functions) {
    for (const Loop& l : find_loops(fn)) {
      if (unordered.count(l.container) == 0) continue;
      const std::string body = fn.body.substr(l.body_b, l.body_e - l.body_b);
      const int line = line_in_body(fn, l.off);
      for (const char* sink : kSinks) {
        bool hit = false;
        for (std::size_t off : word_occurrences(body, sink)) {
          std::size_t k = off + std::string(sink).size();
          while (k < body.size() &&
                 std::isspace(static_cast<unsigned char>(body[k])))
            ++k;
          if (k < body.size() && body[k] == '(') { hit = true; break; }
        }
        if (hit)
          out.push_back(
              {"det-unordered-sink", f.rel, line, l.container,
               "iteration over unordered container '" + l.container +
                   "' feeds determinism sink '" + sink +
                   "' — hash order is seed/pointer dependent; iterate a "
                   "sorted view instead"});
      }
      // FP accumulation inside the loop: addition order changes the sum.
      static const std::regex kAccum("\\b([A-Za-z_]\\w*)\\s*\\+=");
      const std::string ctx = fn.header + fn.body;
      for (std::sregex_iterator it(body.begin(), body.end(), kAccum), end;
           it != end; ++it) {
        const std::string var = (*it)[1].str();
        const std::regex fp_decl("\\b(?:double|float)\\s*&?\\s*" + var +
                                 "\\b");
        if (std::regex_search(ctx, fp_decl) ||
            std::regex_search(f.stripped, fp_decl))
          out.push_back(
              {"det-unordered-sink", f.rel, line, l.container,
               "floating-point accumulation into '" + var +
                   "' inside iteration over unordered container '" +
                   l.container + "' — FP addition does not commute"});
      }
      // Tainted values reaching a sink after the loop.
      const std::set<std::string> tainted = written_vars(body);
      const std::string rest = fn.body.substr(l.body_e);
      for (const char* sink : kSinks) {
        for (std::size_t off : word_occurrences(rest, sink)) {
          std::size_t k = off + std::string(sink).size();
          while (k < rest.size() &&
                 std::isspace(static_cast<unsigned char>(rest[k])))
            ++k;
          if (k >= rest.size() || rest[k] != '(') continue;
          const std::size_t argend = match_forward(rest, k, '(', ')');
          if (argend == std::string::npos) continue;
          const std::string args = rest.substr(k + 1, argend - k - 2);
          for (const std::string& var : tainted) {
            if (!word_occurrences(args, var).empty()) {
              out.push_back(
                  {"det-unordered-sink", f.rel,
                   line_in_body(fn, l.body_e + off), var,
                   "'" + var + "' is written while iterating unordered "
                   "container '" + l.container +
                       "' and later reaches determinism sink '" + sink +
                       "'"});
              break;
            }
          }
        }
      }
    }
  }
}

// --- det-pointer-key ----------------------------------------------------

/// Splits a template-argument list at top-level commas.
std::vector<std::string> split_targs(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : args) {
    if (c == '<' || c == '(' || c == '[') ++depth;
    else if (c == '>' || c == ')' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

void rule_pointer_key(const SourceFile& f, std::vector<Finding>& out) {
  static const char* kOrdered[] = {"std::map", "std::set", "std::multimap",
                                   "std::multiset"};
  const std::string& s = f.stripped;
  for (const char* type : kOrdered) {
    const std::string tok = type;
    const bool is_map = tok.find("map") != std::string::npos;
    for (std::size_t pos = s.find(tok); pos != std::string::npos;
         pos = s.find(tok, pos + 1)) {
      if (pos > 0 && is_ident_char(s[pos - 1])) continue;
      std::size_t i = pos + tok.size();
      if (i < s.size() && is_ident_char(s[i])) continue;
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
      if (i >= s.size() || s[i] != '<') continue;
      const std::size_t close = match_forward(s, i, '<', '>');
      if (close == std::string::npos) continue;
      const std::vector<std::string> targs =
          split_targs(s.substr(i + 1, close - i - 2));
      if (targs.empty() || targs[0].find('*') == std::string::npos) continue;
      // An explicit comparator opts into a documented ordering.
      const std::size_t comparator_arity = is_map ? 3 : 2;
      if (targs.size() >= comparator_arity) continue;
      out.push_back({"det-pointer-key", f.rel, line_of_offset(s, pos), tok,
                     std::string(type) +
                         " keyed by a raw pointer orders by address — "
                         "nondeterministic across runs; key by a stable id "
                         "or supply a deterministic comparator"});
    }
  }
}

// --- det-wall-in-sim ----------------------------------------------------

const std::set<std::string>& call_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",        "while",      "switch",   "return",
      "sizeof",   "alignof",    "decltype",   "catch",    "co_await",
      "co_return", "co_yield",  "static_cast", "dynamic_cast",
      "reinterpret_cast", "const_cast", "new", "delete", "throw",
      "noexcept", "assert",     "defined",    "static_assert"};
  return kw;
}

/// Standard container/utility method names: a dotted call with one of
/// these is almost certainly a std type, not a project function that
/// happens to share the tail name.
const std::set<std::string>& std_method_names() {
  static const std::set<std::string> names = {
      "push",    "pop",          "push_back", "pop_back", "push_front",
      "emplace", "emplace_back", "insert",    "erase",    "find",
      "count",   "begin",        "end",       "size",     "empty",
      "clear",   "front",        "back",      "top",      "reserve",
      "resize",  "at",           "get",       "reset",    "release",
      "load",    "store",        "exchange",  "wait",     "swap",
      "lock",    "unlock",       "try_lock",  "str",      "c_str",
      "data",    "append",       "substr",    "notify_one", "notify_all"};
  return names;
}

struct FnAttrs {
  const char* wall = nullptr;  ///< first wall token found, else null
  bool sim = false;
  std::set<std::string> callees;
};

void rule_wall_in_sim(const TreeModel& m, std::vector<Finding>& out) {
  std::vector<FnAttrs> attrs(m.all_fns.size());
  for (std::size_t i = 0; i < m.all_fns.size(); ++i) {
    const auto& [fi, gi] = m.all_fns[i];
    const SourceFile& f = m.files[fi];
    const Function& fn = f.functions[gi];
    const std::string text = fn.header + fn.body;
    for (const char* t : kWallTokens)
      if (text.find(t) != std::string::npos) { attrs[i].wall = t; break; }
    bool sim_root = false;
    for (const char* r : kSimRoots)
      if (f.rel.rfind(r, 0) == 0) { sim_root = true; break; }
    attrs[i].sim = sim_root;
    if (!attrs[i].sim)
      for (const char* t : kSimTokens)
        if (text.find(t) != std::string::npos) { attrs[i].sim = true; break; }
    static const std::regex kCall("\\b([A-Za-z_]\\w*)\\s*\\(");
    for (std::sregex_iterator it(fn.body.begin(), fn.body.end(), kCall), end;
         it != end; ++it) {
      const std::string callee = (*it)[1].str();
      if (call_keywords().count(callee) != 0) continue;
      // Method calls on objects of unknown type (obj.f(), p->f()) resolve
      // by tail name only; generic container-method names (queue_.push,
      // v.clear) would hijack the walk into unrelated classes with the
      // same method name, so they are skipped.
      const std::size_t mpos =
          static_cast<std::size_t>(it->position(1));
      std::size_t p = mpos;
      while (p > 0 && std::isspace(static_cast<unsigned char>(fn.body[p - 1])))
        --p;
      const bool via_member =
          (p > 0 && fn.body[p - 1] == '.') ||
          (p > 1 && fn.body[p - 2] == '-' && fn.body[p - 1] == '>');
      if (via_member && std_method_names().count(callee) != 0) continue;
      attrs[i].callees.insert(callee);
    }
  }
  for (std::size_t i = 0; i < m.all_fns.size(); ++i) {
    if (!attrs[i].sim) continue;
    // BFS through uniquely-named callees only (ambiguous names would
    // make the walk guess); depth-capped, path recorded for the report.
    std::vector<std::size_t> queue = {i};
    std::map<std::size_t, std::size_t> parent;
    std::set<std::size_t> visited = {i};
    const std::size_t kMaxDepth = 8;
    std::size_t hit = SIZE_MAX;
    for (std::size_t qi = 0; qi < queue.size() && hit == SIZE_MAX; ++qi) {
      const std::size_t cur = queue[qi];
      if (attrs[cur].wall != nullptr) { hit = cur; break; }
      std::size_t depth = 0;
      for (std::size_t p = cur; parent.count(p) != 0; p = parent[p]) ++depth;
      if (depth >= kMaxDepth) continue;
      for (const std::string& callee : attrs[cur].callees) {
        const auto it = m.fn_by_tail.find(callee);
        if (it == m.fn_by_tail.end() || it->second.size() != 1) continue;
        const std::size_t next = it->second[0];
        if (!visited.insert(next).second) continue;
        parent[next] = cur;
        queue.push_back(next);
      }
    }
    if (hit == SIZE_MAX) continue;
    std::vector<std::size_t> chain;
    for (std::size_t p = hit;; p = parent[p]) {
      chain.push_back(p);
      if (p == i) break;
    }
    std::string path;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) path += " -> ";
      path += m.files[m.all_fns[*it].first].functions[m.all_fns[*it].second]
                  .name;
    }
    const auto& [fi, gi] = m.all_fns[i];
    out.push_back({"det-wall-in-sim", m.files[fi].rel,
                   m.files[fi].functions[gi].line,
                   m.files[fi].functions[gi].name,
                   "simulated-time function reaches a wall-clock read: " +
                       path + " (" + attrs[hit].wall +
                       ") — replay would depend on the host clock"});
  }
}

}  // namespace

void run_determinism_rules(const TreeModel& m, std::vector<Finding>& out) {
  for (const SourceFile& f : m.files) {
    rule_unordered_sink(m, f, out);
    rule_pointer_key(f, out);
  }
  rule_wall_in_sim(m, out);
}

}  // namespace dmr::analysis

// Ablation (§V-A): how many dedicated cores per node?
//
// "In this work, we have used only one dedicated core per node, as it
// turned out to be an optimal choice." — sweep K = 1..4 under symmetric
// semantics: each extra dedicated core removes a compute core (the
// remaining ranks' subdomains grow by cores/(cores-K)), while the
// writers' per-file volume shrinks. On a 12-core Kraken node the
// compute-time loss quickly outweighs the I/O gain; the crossover only
// moves with very I/O-heavy cadences.
#include <cstdio>

#include "bench_util.hpp"
#include "cm1/workload.hpp"
#include "experiments/experiments.hpp"

using namespace dmr;
using strategies::RunConfig;
using strategies::StrategyKind;

namespace {

void sweep(const char* label, RunConfig base, int cores_per_node) {
  std::printf("\n%s\n", label);
  Table t({"dedicated cores", "run time (s)", "writer write avg (s)",
           "spare fraction", "files/phase"});
  const auto standard = base.workload;
  for (int k = 1; k <= 4; ++k) {
    RunConfig cfg = base;
    cfg.damaris.dedicated_cores_per_node = k;
    cfg.workload = cm1::scale_for_dedicated(standard, cores_per_node, k);
    cfg.workload.write_interval = standard.write_interval;
    auto res = run_strategy(cfg);
    t.add_row({std::to_string(k), Table::num(res.total_runtime, 1),
               Table::num(res.dedicated_write_seconds.mean(), 2),
               Table::num(res.dedicated_spare_fraction, 3),
               std::to_string(res.nodes * k)});
  }
  t.print();
}

}  // namespace

int main() {
  bench::banner("Ablation — dedicated cores per node (symmetric semantics)",
                "Section V-A discussion",
                "K=1 optimal on 12-core nodes: extra dedicated cores cost "
                "compute more than they gain I/O");

  // Kraken: 12-core nodes, 10 iterations + writes every 5.
  {
    RunConfig base = experiments::kraken_config(
        StrategyKind::kDamaris, 1152, /*iterations=*/10,
        /*write_interval=*/5);
    base.workload = cm1::kraken_workload(false);  // standard; sweep rescales
    base.workload.write_interval = 5;
    sweep("Kraken, 1152 cores, write every 5 iterations", base, 12);
  }

  // Grid'5000: 24-core nodes — the relative cost of a dedicated core is
  // half, so K=2 hurts less (but still does not pay off here).
  {
    RunConfig base = experiments::grid5000_config(
        StrategyKind::kDamaris, 672, /*iterations=*/10, /*write_interval=*/5);
    base.workload = cm1::grid5000_workload(false);
    base.workload.write_interval = 5;
    sweep("Grid'5000, 672 cores, write every 5 iterations", base, 24);
  }
  return 0;
}

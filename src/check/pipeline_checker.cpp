#include "check/pipeline_checker.hpp"

namespace dmr::check {

std::string_view pipeline_violation_name(PipelineViolationKind k) {
  switch (k) {
    case PipelineViolationKind::kOutOfOrderStage: return "out-of-order-stage";
    case PipelineViolationKind::kResizeOutsideTransform:
      return "resize-outside-transform";
    case PipelineViolationKind::kGrowingTransform: return "growing-transform";
    case PipelineViolationKind::kNegativeDuration: return "negative-duration";
  }
  return "?";
}

std::string PipelineViolation::to_string() const {
  std::string s(pipeline_violation_name(kind));
  s += ": request[source=" + std::to_string(source) +
       " phase=" + std::to_string(phase) + "] stage=" +
       iopath::stage_name(stage);
  if (!detail.empty()) s += " (" + detail + ")";
  return s;
}

void StageOrderChecker::on_request_begin(const iopath::WriteRequest& req) {
  MutexLock lock(mutex_);
  last_stage_[{req.source, req.phase}] = -1;
}

void StageOrderChecker::on_stage_end(iopath::StageKind kind,
                                     const iopath::WriteRequest& req,
                                     SimTime seconds, Bytes bytes_in,
                                     Bytes bytes_out) {
  if (seconds < 0.0) {
    record(PipelineViolationKind::kNegativeDuration, req, kind,
           "duration " + std::to_string(seconds) + "s");
  }
  if (bytes_out != bytes_in) {
    if (kind != iopath::StageKind::kTransform) {
      record(PipelineViolationKind::kResizeOutsideTransform, req, kind,
             std::to_string(bytes_in) + " -> " + std::to_string(bytes_out) +
                 " bytes");
    } else if (bytes_out > bytes_in) {
      record(PipelineViolationKind::kGrowingTransform, req, kind,
             std::to_string(bytes_in) + " -> " + std::to_string(bytes_out) +
                 " bytes");
    }
  }
  MutexLock lock(mutex_);
  int& last = last_stage_[{req.source, req.phase}];
  const int idx = iopath::stage_index(kind);
  if (idx < last) {
    violations_.push_back(PipelineViolation{
        PipelineViolationKind::kOutOfOrderStage, req.source, req.phase, kind,
        std::string(iopath::stage_name(kind)) + " after " +
            iopath::stage_name(static_cast<iopath::StageKind>(last))});
  } else {
    last = idx;
  }
}

void StageOrderChecker::on_request_end(const iopath::WriteRequest& req) {
  MutexLock lock(mutex_);
  last_stage_.erase({req.source, req.phase});
  ++requests_;
}

void StageOrderChecker::record(PipelineViolationKind kind,
                               const iopath::WriteRequest& req,
                               iopath::StageKind stage, std::string detail) {
  MutexLock lock(mutex_);
  violations_.push_back(PipelineViolation{kind, req.source, req.phase, stage,
                                          std::move(detail)});
}

std::vector<PipelineViolation> StageOrderChecker::violations() const {
  MutexLock lock(mutex_);
  return violations_;
}

std::size_t StageOrderChecker::violation_count() const {
  MutexLock lock(mutex_);
  return violations_.size();
}

std::uint64_t StageOrderChecker::requests_checked() const {
  MutexLock lock(mutex_);
  return requests_;
}

std::string StageOrderChecker::report() const {
  MutexLock lock(mutex_);
  if (violations_.empty()) return "pipeline clean";
  std::string out;
  for (const PipelineViolation& v : violations_) {
    out += v.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace dmr::check

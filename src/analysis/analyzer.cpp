#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/model.hpp"
#include "analysis/rules.hpp"
#include "analysis/source.hpp"

namespace fs = std::filesystem;

namespace dmr::analysis {

namespace {

/// Bumped whenever rule semantics change, so stale caches self-expire.
const char* kCacheHeader = "dmr-verify-cache v1";

struct AllowEntry {
  std::string rule;
  std::string path;    ///< suffix-matched against the finding's file
  std::string symbol;  ///< optional; empty matches any
  std::string justification;
  int line = 0;
  bool used = false;
};

std::uint64_t fnv1a64(const std::string& data) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path r = fs::relative(p, root, ec);
  return (ec ? p : r).generic_string();
}

/// Files named by compile_commands.json (hand-rolled, as in dmr_lint:
/// the format is regular enough to need no JSON parser).
std::vector<fs::path> compdb_files(const fs::path& compdb) {
  std::vector<fs::path> files;
  const auto text = read_file(compdb.string());
  if (!text) return files;
  static const std::regex kFile("\"file\"\\s*:\\s*\"([^\"]+)\"");
  for (std::sregex_iterator it(text->begin(), text->end(), kFile), end;
       it != end; ++it)
    files.emplace_back((*it)[1].str());
  return files;
}

struct FileStat {
  std::string rel;
  fs::path path;
  std::int64_t mtime = 0;
  std::uint64_t size = 0;
  std::uint64_t hash = 0;
  bool hashed = false;
  std::string content;  ///< filled lazily
};

struct CacheEntry {
  std::int64_t mtime = 0;
  std::uint64_t size = 0;
  std::uint64_t hash = 0;
};

struct Cache {
  bool loaded = false;
  std::map<std::string, CacheEntry> files;
  std::vector<Finding> findings;
};

std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  return s;
}

Cache load_cache(const std::string& path) {
  Cache cache;
  const auto text = read_file(path);
  if (!text) return cache;
  std::istringstream is(*text);
  std::string line;
  if (!std::getline(is, line) || line != kCacheHeader) return cache;
  while (std::getline(is, line)) {
    if (line.size() < 2) continue;
    std::vector<std::string> cols;
    std::size_t pos = 2;
    while (pos <= line.size()) {
      const std::size_t tab = line.find('\t', pos);
      cols.push_back(line.substr(pos, tab == std::string::npos
                                          ? std::string::npos
                                          : tab - pos));
      if (tab == std::string::npos) break;
      pos = tab + 1;
    }
    try {
      if (line[0] == 'F' && cols.size() == 4) {
        CacheEntry e;
        e.mtime = std::stoll(cols[0]);
        e.size = std::stoull(cols[1]);
        e.hash = std::stoull(cols[2]);
        cache.files[cols[3]] = e;
      } else if (line[0] == 'J' && cols.size() == 5) {
        Finding f;
        f.rule = cols[0];
        f.file = cols[1];
        f.line = std::stoi(cols[2]);
        f.symbol = cols[3];
        f.message = cols[4];
        cache.findings.push_back(f);
      }
    } catch (const std::exception&) {
      return Cache{};  // corrupt cache: treat as absent
    }
  }
  cache.loaded = true;
  return cache;
}

void save_cache(const std::string& path, const std::vector<FileStat>& stats,
                const std::vector<Finding>& findings) {
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  std::ofstream out(path);
  if (!out) return;
  out << kCacheHeader << "\n";
  for (const FileStat& st : stats)
    out << "F " << st.mtime << "\t" << st.size << "\t" << st.hash << "\t"
        << st.rel << "\n";
  for (const Finding& f : findings)
    out << "J " << sanitize(f.rule) << "\t" << sanitize(f.file) << "\t"
        << f.line << "\t" << sanitize(f.symbol) << "\t"
        << sanitize(f.message) << "\n";
}

std::vector<AllowEntry> parse_allowlist(const std::string& path,
                                        std::vector<Finding>& out) {
  std::vector<AllowEntry> entries;
  const auto text = read_file(path);
  if (!text) return entries;
  const auto lines = split_lines(*text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty() || line[0] == '#') continue;
    const std::size_t hash = line.find('#');
    std::string justification =
        hash == std::string::npos ? "" : line.substr(hash + 1);
    while (!justification.empty() && justification.front() == ' ')
      justification.erase(justification.begin());
    std::istringstream is(line.substr(0, hash));
    AllowEntry e;
    e.line = static_cast<int>(i + 1);
    is >> e.rule >> e.path;
    if (const std::size_t colon = e.path.find(':');
        colon != std::string::npos) {
      e.symbol = e.path.substr(colon + 1);
      e.path = e.path.substr(0, colon);
    }
    e.justification = justification;
    if (e.rule.empty() || e.path.empty() || e.justification.empty()) {
      out.push_back({"allowlist", path, e.line, e.rule,
                     "malformed allowlist entry (need `rule path[:symbol]  "
                     "# justification`)"});
      continue;
    }
    entries.push_back(e);
  }
  return entries;
}

bool suppressed_by(const Finding& f, const AllowEntry& e) {
  if (f.rule != e.rule) return false;
  if (f.file.size() < e.path.size() ||
      f.file.compare(f.file.size() - e.path.size(), e.path.size(), e.path) !=
          0)
    return false;
  if (!e.symbol.empty() && f.symbol != e.symbol) return false;
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') { out += '\\'; out += c; }
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

bool finding_less(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  if (a.symbol != b.symbol) return a.symbol < b.symbol;
  return a.message < b.message;
}

}  // namespace

int run_analyzer(const Options& opt) {
  const fs::path root = opt.root;
  const fs::path src_root = root / "src";
  if (!fs::exists(src_root)) {
    std::cerr << "dmr_verify: no src/ under " << root << "\n";
    return 2;
  }

  // File set: compdb entries under root/src plus a recursive scan
  // (headers are not in the compdb; without one, the scan drives it).
  std::set<fs::path> paths;
  if (!opt.compdb.empty())
    for (const fs::path& f : compdb_files(opt.compdb)) {
      std::error_code ec;
      const fs::path canon = fs::weakly_canonical(f, ec);
      if (!ec && canon.generic_string().find(
                     fs::weakly_canonical(src_root).generic_string()) == 0)
        paths.insert(canon);
    }
  for (const auto& de : fs::recursive_directory_iterator(src_root)) {
    if (!de.is_regular_file()) continue;
    const std::string ext = de.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      paths.insert(fs::weakly_canonical(de.path()));
  }

  std::vector<FileStat> stats;
  for (const fs::path& p : paths) {
    std::error_code ec;
    FileStat st;
    st.rel = rel_path(p, root);
    st.path = p;
    st.mtime = fs::last_write_time(p, ec).time_since_epoch().count();
    if (ec) continue;
    st.size = fs::file_size(p, ec);
    if (ec) continue;
    stats.push_back(std::move(st));
  }
  std::sort(stats.begin(), stats.end(),
            [](const FileStat& a, const FileStat& b) { return a.rel < b.rel; });

  Cache cache;
  if (!opt.cache.empty()) cache = load_cache(opt.cache);

  // Resolve each file's hash: trust the cached hash when mtime+size
  // match; otherwise read and hash.
  bool cache_hit = cache.loaded && cache.files.size() == stats.size();
  for (FileStat& st : stats) {
    const auto it = cache.files.find(st.rel);
    if (cache.loaded && it != cache.files.end() &&
        it->second.mtime == st.mtime && it->second.size == st.size) {
      st.hash = it->second.hash;
      st.hashed = true;
      continue;
    }
    const auto text = read_file(st.path.string());
    if (!text) {
      std::cerr << "dmr_verify: cannot read " << st.rel << "\n";
      return 2;
    }
    st.content = *text;
    st.hash = fnv1a64(st.content);
    st.hashed = true;
    if (it == cache.files.end() || it->second.hash != st.hash)
      cache_hit = false;
  }

  std::vector<Finding> findings;
  if (cache_hit) {
    findings = cache.findings;
    std::cout << "dmr_verify: analysis cache hit (" << stats.size()
              << " files unchanged)\n";
  } else {
    std::vector<SourceFile> files;
    for (FileStat& st : stats) {
      if (st.content.empty() && st.size != 0) {
        const auto text = read_file(st.path.string());
        if (!text) {
          std::cerr << "dmr_verify: cannot read " << st.rel << "\n";
          return 2;
        }
        st.content = *text;
      }
      SourceFile f;
      f.rel = st.rel;
      const std::size_t dot = f.rel.rfind('.');
      f.unit = dot == std::string::npos ? f.rel : f.rel.substr(0, dot);
      const std::string ext =
          dot == std::string::npos ? "" : f.rel.substr(dot);
      f.is_header = ext == ".hpp" || ext == ".h";
      f.raw = std::move(st.content);
      f.stripped = strip_comments_and_strings(f.raw);
      f.raw_lines = split_lines(f.raw);
      f.functions = extract_functions(f.stripped);
      files.push_back(std::move(f));
    }
    if (opt.verbose)
      std::cerr << "dmr_verify: analyzing " << files.size() << " files\n";
    const TreeModel model = build_model(std::move(files));
    run_determinism_rules(model, findings);
    run_atomics_rules(model, findings);
    run_shard_rules(model, findings);
    std::sort(findings.begin(), findings.end(), finding_less);
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding& a, const Finding& b) {
                                 return a.file == b.file && a.line == b.line &&
                                        a.rule == b.rule &&
                                        a.symbol == b.symbol &&
                                        a.message == b.message;
                               }),
                   findings.end());
    if (!opt.cache.empty()) save_cache(opt.cache, stats, findings);
  }

  std::string allowlist = opt.allowlist;
  if (allowlist.empty()) {
    const fs::path def = root / "tools" / "dmr_verify" / "allowlist.txt";
    if (fs::exists(def)) allowlist = def.string();
  }
  std::vector<AllowEntry> allow;
  if (!allowlist.empty()) allow = parse_allowlist(allowlist, findings);
  for (Finding& f : findings)
    for (AllowEntry& e : allow)
      if (suppressed_by(f, e)) {
        f.suppressed = true;
        e.used = true;
      }

  int unsuppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      if (opt.verbose)
        std::cout << f.file << ":" << f.line << ": [" << f.rule
                  << "] suppressed: " << f.message << "\n";
      continue;
    }
    ++unsuppressed;
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  for (const AllowEntry& e : allow)
    if (!e.used)
      std::cerr << "dmr_verify: warning: unused allowlist entry (line "
                << e.line << "): " << e.rule << " " << e.path << "\n";

  if (!opt.json_out.empty()) {
    std::error_code ec;
    fs::create_directories(fs::path(opt.json_out).parent_path(), ec);
    std::ofstream js(opt.json_out);
    js << "{\n  \"findings\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      js << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
         << json_escape(f.file) << "\", \"line\": " << f.line
         << ", \"symbol\": \"" << json_escape(f.symbol)
         << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
         << ", \"message\": \"" << json_escape(f.message) << "\"}"
         << (i + 1 < findings.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"unsuppressed\": " << unsuppressed
       << ",\n  \"total\": " << findings.size() << "\n}\n";
  }

  std::cout << "dmr_verify: " << findings.size() << " finding(s), "
            << unsuppressed << " unsuppressed\n";
  return unsuppressed == 0 ? 0 : 1;
}

}  // namespace dmr::analysis


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/machine.cpp" "src/cluster/CMakeFiles/dmr_cluster.dir/machine.cpp.o" "gcc" "src/cluster/CMakeFiles/dmr_cluster.dir/machine.cpp.o.d"
  "/root/repo/src/cluster/noise.cpp" "src/cluster/CMakeFiles/dmr_cluster.dir/noise.cpp.o" "gcc" "src/cluster/CMakeFiles/dmr_cluster.dir/noise.cpp.o.d"
  "/root/repo/src/cluster/presets.cpp" "src/cluster/CMakeFiles/dmr_cluster.dir/presets.cpp.o" "gcc" "src/cluster/CMakeFiles/dmr_cluster.dir/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dmr_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

#include "simmpi/collective_io.hpp"

#include <algorithm>
#include <cassert>

namespace dmr::simmpi {

CollectiveWriter::CollectiveWriter(World& world, fs::SimFs& fs,
                                   CollectiveWriteConfig cfg)
    : world_(&world), fs_(&fs), cfg_(cfg) {
  assert(cfg_.aggregators_per_node >= 1);
  assert(cfg_.aggregators_per_node <= world.ranks_per_node());
}

int CollectiveWriter::num_aggregators() const {
  return world_->num_nodes_used() * cfg_.aggregators_per_node;
}

bool CollectiveWriter::is_aggregator(int rank) const {
  return rank % world_->ranks_per_node() < cfg_.aggregators_per_node;
}

int CollectiveWriter::aggregator_index(int rank) const {
  return world_->node_of(rank) * cfg_.aggregators_per_node +
         rank % world_->ranks_per_node();
}

des::Task<void> CollectiveWriter::collective_write(int rank,
                                                   Bytes bytes_per_rank) {
  World& w = *world_;

  // Everyone synchronizes to open the shared file; rank 0 creates it,
  // striped over every server (that is what a large shared file does).
  co_await w.barrier();
  if (rank == 0) {
    current_file_ = co_await fs_->create(w.core_of(rank),
                                         fs_->num_servers(),
                                         /*shared=*/true);
    file_ready_ = true;
  } else {
    co_await fs_->open(w.core_of(rank), current_file_);
  }
  co_await w.barrier();  // file visible to all

  // Phase 1: redistribution by file offset. Each rank ships its whole
  // contribution; aggregators additionally receive their aggregate
  // share through their NIC. The alltoall synchronizes internally.
  co_await w.alltoall(rank, bytes_per_rank);

  const Bytes total = bytes_per_rank * static_cast<Bytes>(w.size());
  const int num_agg = num_aggregators();
  const Bytes per_agg = (total + num_agg - 1) / num_agg;

  if (is_aggregator(rank)) {
    const int idx = aggregator_index(rank);
    // Receive this aggregator's share (minus what it contributed itself).
    const Bytes incoming =
        per_agg > bytes_per_rank ? per_agg - bytes_per_rank : 0;
    if (incoming > 0) {
      co_await w.node_of_rank(rank).nic().transfer(incoming);
    }
    // Phase 2: write the contiguous range [idx*per_agg, ...) — aligned
    // down to stripe boundaries like ROMIO's file-domain split.
    const Bytes stripe = fs_->spec().stripe_size;
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(idx) * per_agg) / stripe * stripe;
    fs::WriteOptions opts;
    opts.max_request = cfg_.collective_buffer;
    co_await fs_->write(w.core_of(rank), current_file_, offset, per_agg,
                        opts);
  }

  // The collective write returns together on all ranks: aggregators
  // finish their ranges, rank 0 closes the file, and the closing barrier
  // releases everyone at the same simulated time.
  co_await w.barrier();
  if (rank == 0) {
    co_await fs_->close(w.core_of(rank), current_file_);
    file_ready_ = false;
  }
  co_await w.barrier();
}

}  // namespace dmr::simmpi

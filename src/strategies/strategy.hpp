// The three I/O approaches of the paper's evaluation, as cluster-scale
// simulations:
//
//   kFilePerProcess  every rank creates its own HDF5-like file (paper
//                    §II-B-a): no inter-process synchronization, but a
//                    create storm at the metadata server and thousands
//                    of interleaved small write streams at the data
//                    servers;
//   kCollectiveIo    two-phase collective write to one shared file
//                    (§II-B-b): synchronized, aggregated, lock-bound;
//   kDamaris         one dedicated core per node (§III): compute ranks
//                    memcpy into shared memory and continue; dedicated
//                    cores write large per-node files asynchronously,
//                    optionally compressing and slot-scheduling (§IV-D);
//   kNoIo            compute only — the C576 baseline of the scalability
//                    factor S = N * C576 / T_N (§IV-C2).
//
// One call to run_strategy() simulates a full CM1-style run (iterations,
// write phases) on a platform preset and returns the metrics the paper's
// figures are built from.
#pragma once

#include <cstdint>

#include "cluster/specs.hpp"
#include "cm1/workload.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "fault/retry.hpp"
#include "fs/sim_fs.hpp"
#include "iopath/compression_model.hpp"
#include "iopath/metrics.hpp"
#include "sched/slot_scheduler.hpp"
#include "simmpi/collective_io.hpp"
#include "trace/tracer.hpp"

namespace dmr::strategies {

enum class StrategyKind { kFilePerProcess, kCollectiveIo, kDamaris, kNoIo };

const char* strategy_name(StrategyKind kind);

/// How compute cores hand their data to the dedicated resource — used
/// by the §V-B positioning ablations.
enum class Transport {
  /// The paper's design: one memcpy into node-local shared memory.
  kSharedMemory,
  /// A FUSE mount like the functional-partitioning approach the paper
  /// compares against: every byte crosses the kernel, measured ~10x
  /// slower than shared memory (§V-B).
  kFuse,
  /// PreDatA/active-buffer style dedicated *nodes*: data leaves the
  /// compute node over the NIC and fans into a small set of staging
  /// nodes (one per `compute_nodes_per_staging` compute nodes).
  kDedicatedNodes,
};

const char* transport_name(Transport t);

struct DamarisOptions {
  /// Dedicated cores per node, symmetric semantics (§V-A): each serves
  /// an equal share of the node's compute cores and writes its own
  /// file. The paper found 1 to be optimal on 12–24 core nodes.
  int dedicated_cores_per_node = 1;

  Transport transport = Transport::kSharedMemory;
  /// FUSE slowdown factor vs shared memory (paper: ~10x).
  double fuse_slowdown = 10.0;
  /// Fan-in for Transport::kDedicatedNodes (staging nodes are added on
  /// top of the compute nodes; their cores do not run the simulation).
  int compute_nodes_per_staging = 32;

  /// Lossless compression on the dedicated core (gzip stand-in): costs
  /// CPU time at `compression_rate` and divides the stored bytes by
  /// `compression_ratio` (the paper measured 1.87x). These fields are a
  /// thin view over iopath::CompressionModel — the constants live there.
  bool compression = false;
  double compression_ratio = iopath::kGzipRatio;
  double compression_rate = iopath::kGzipRate;

  /// Additional 16-bit precision reduction for visualization outputs:
  /// total ratio becomes ~6x (the paper's 600%); halving the data first
  /// makes the lossless stage proportionally faster.
  bool precision16 = false;
  double precision16_ratio = iopath::kPrecision16Ratio;
  double precision16_rate = iopath::kPrecision16Rate;

  /// The CompressionModel these options describe (precision16 wins when
  /// both reductions are enabled — it subsumes the lossless chain).
  iopath::CompressionModel compression_model() const {
    if (precision16) {
      return iopath::CompressionModel::visualization(precision16_ratio,
                                                     precision16_rate);
    }
    if (compression) {
      return iopath::CompressionModel::lossless(compression_ratio,
                                                compression_rate);
    }
    return iopath::CompressionModel::none();
  }

  /// §IV-D slot scheduling of dedicated-core writes.
  bool slot_scheduling = false;

  /// Trace-fed adaptive slot scheduling (sched/adaptive.hpp): replaces
  /// the static per-request SlotScheduler with an online controller
  /// that retunes slot count/offsets/widths every write phase from the
  /// observed Schedule-stage waits and Storage-stage service times.
  /// Uniform static slots until the first full phase of observations,
  /// so a balanced workload matches slot_scheduling within noise while
  /// an imbalanced one recovers the throughput static slots lose.
  /// Implies slot-style scheduling (slot_scheduling need not be set).
  bool adaptive_scheduling = false;
  /// EMA smoothing factor for the controller's load and interval
  /// estimates (the `<scheduling alpha="...">` config key; clamped into
  /// (0, 1]).
  double slot_alpha = sched::kDefaultAlpha;

  /// §VI future-work extension: *coordinated* distributed I/O scheduling.
  /// Instead of communication-free local slots, the dedicated cores pass
  /// `coordination_tokens` write tokens among themselves, bounding the
  /// number of concurrent writers hitting the file system. Mutually
  /// exclusive with slot_scheduling in spirit; if both are set, slots
  /// apply first.
  bool coordinated_scheduling = false;
  int coordination_tokens = 8;

  /// Request size and stripe count of the per-node files.
  Bytes write_request = 128 * MiB;
  int file_stripe_count = 4;
};

struct RunConfig {
  cluster::PlatformSpec platform;
  cm1::WorkloadModel workload;
  StrategyKind kind = StrategyKind::kFilePerProcess;
  /// Total cores = num_nodes * platform.node.cores; with kDamaris one
  /// core per node is dedicated and the rest compute.
  int num_nodes = 4;
  int iterations = 10;
  std::uint64_t seed = 1;

  DamarisOptions damaris;
  /// Request size used by file-per-process ranks (HDF5-chunk-sized).
  Bytes fpp_request = 1 * MiB;
  /// HDF5 gzip in the file-per-process path (the paper enabled it for
  /// every BluePrint experiment): each *compute core* pays the CPU cost
  /// inside its write phase before shipping the smaller volume — unlike
  /// Damaris, where the same work hides on the dedicated core. Thin
  /// view over iopath::CompressionModel, like DamarisOptions.
  bool fpp_compression = false;
  double fpp_compression_ratio = iopath::kGzipRatio;
  double fpp_compression_rate = iopath::kGzipRate;
  simmpi::CollectiveWriteConfig collective;

  /// Optional structured tracing (not owned; null = untraced). The
  /// tracer is installed for the duration of run_strategy() via
  /// trace::ScopedTracer, so DES resources, pipelines and the shm layer
  /// record per-entity timelines in simulated time. Pure observation:
  /// a traced run returns bit-identical results to an untraced one
  /// (pinned by tests/trace_test.cpp).
  trace::Tracer* tracer = nullptr;

  /// Optional fault injector (not owned; null = fault-free, the exact
  /// historical timeline). When set, it is wired into the storage
  /// network, every node NIC and the simulated file system for the
  /// duration of the run.
  const fault::FaultInjector* injector = nullptr;
  /// Retry policy for Storage-stage writes (default: disabled — a
  /// failed write is recorded in the results and not retried).
  fault::RetryPolicy storage_retry;

  /// The Transform model of the file-per-process client pipeline.
  iopath::CompressionModel fpp_compression_model() const {
    return fpp_compression
               ? iopath::CompressionModel::lossless(fpp_compression_ratio,
                                                    fpp_compression_rate)
               : iopath::CompressionModel::none();
  }
};

struct RunResult {
  StrategyKind kind{};
  int total_cores = 0;
  int compute_ranks = 0;
  int nodes = 0;
  /// Extra staging nodes allocated by Transport::kDedicatedNodes.
  int staging_nodes = 0;
  int phases = 0;

  /// Simulation-visible per-rank write durations, pooled over phases —
  /// for Damaris this is the shared-memory copy time (the paper's 0.2 s).
  Sample rank_write_seconds;
  /// Barrier-to-barrier duration of each write phase as the application
  /// perceives it (one sample per phase).
  Sample phase_seconds;
  /// Dedicated-core write durations per (node, phase) — Damaris only.
  Sample dedicated_write_seconds;
  /// Fraction of the run the dedicated cores spent idle — Damaris only.
  double dedicated_spare_fraction = 0.0;

  /// Raw bytes emitted per write phase (all ranks).
  Bytes bytes_per_phase = 0;
  /// Bytes that reached the file system per phase (smaller when the
  /// dedicated cores compress).
  Bytes stored_bytes_per_phase = 0;

  /// total time until the last *compute* rank finishes (the application
  /// run time; dedicated cores may still be draining).
  SimTime total_runtime = 0.0;

  /// Paper-style aggregate throughput: raw bytes of a phase divided by
  /// the mean write duration of that phase's writers.
  double aggregate_throughput = 0.0;

  /// Per-stage time/byte counters pooled over the client and writer
  /// pipelines (Ingest/Transport are client-side; Transform, Schedule
  /// and Storage run wherever the strategy places them).
  iopath::PipelineStats stage_stats;

  fs::FsStats fs_stats;

  /// Fault-injection outcomes: write requests whose Storage stage ended
  /// in an error after all retries, retries consumed, and the first
  /// error observed (OK when none).
  std::uint64_t failed_writes = 0;
  std::uint64_t storage_retries = 0;
  Status first_error = Status::ok();

  /// Adaptive scheduling (DamarisOptions::adaptive_scheduling):
  /// completed controller retunes and the active slot count of the
  /// final plan (0 / 0 when the controller was not enabled).
  int schedule_retunes = 0;
  int active_slots = 0;
};

/// Runs one simulated experiment.
RunResult run_strategy(const RunConfig& cfg);

/// Scalability factor S = N * C_base / T_N (paper §IV-C2): `c_base` is
/// the no-I/O, no-dedicated-core runtime measured at the base scale
/// (576 cores in the paper); perfect weak scaling gives S = N.
double scalability_factor(int cores, double t_n, double c_base);

}  // namespace dmr::strategies

struct XmlNode { const char* attr(const char*) const; };
void parse(const XmlNode& n) {
  (void)n.attr("documented_key");
  (void)n.attr("secret_knob");
}

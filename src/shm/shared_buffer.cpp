#include "shm/shared_buffer.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "shm/test_hooks.hpp"
#include "trace/tracer.hpp"

namespace dmr::shm {

SharedBuffer::SharedBuffer(Bytes capacity, AllocPolicy policy,
                           int num_clients)
    : capacity_(capacity),
      policy_(policy),
      num_clients_(num_clients),
      memory_(new std::byte[capacity]),
      fault_seq_(new std::atomic<std::uint64_t>[
          static_cast<std::size_t>(num_clients > 0 ? num_clients : 1)]()) {
  assert(num_clients > 0);
  if (policy_ == AllocPolicy::kMutexFirstFit) {
    free_by_offset_.emplace(0, capacity_);
  } else {
    const Bytes slice = capacity_ / static_cast<Bytes>(num_clients_);
    partitions_.reserve(num_clients_);
    for (int c = 0; c < num_clients_; ++c) {
      auto p = std::make_unique<Partition>();
      p->base = slice * static_cast<Bytes>(c);
      p->length = slice;
      partitions_.push_back(std::move(p));
    }
  }
}

SharedBuffer::~SharedBuffer() = default;

namespace {

/// Samples buffer occupancy into the trace (Category::kShm, wall clock):
/// one "used" counter event per allocate/deallocate, rendered as the
/// occupancy curve the paper's buffer-sizing discussion (§III-B) reasons
/// about.
void trace_used(Bytes used_now) {
  if (trace::Tracer* tr = trace::current();
      tr != nullptr && tr->enabled(trace::Category::kShm)) {
    tr->record_counter({trace::EntityType::kShmBuffer, 0},
                       trace::Category::kShm, "used", tr->wall_now(),
                       used_now);
  }
}

}  // namespace

void SharedBuffer::account_alloc(Bytes size) {
  const Bytes now = used_.fetch_add(size, std::memory_order_relaxed) + size;
  Bytes peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  trace_used(now);
}

void SharedBuffer::account_free(Bytes size) {
  const Bytes now = used_.fetch_sub(size, std::memory_order_relaxed) - size;
  trace_used(now);
}

Result<Block> SharedBuffer::allocate(Bytes size, int client_id) {
  if (size == 0) {
    return invalid_argument("zero-size allocation");
  }
  if (client_id < 0 || client_id >= num_clients_) {
    return invalid_argument("client_id out of range");
  }
  if (const fault::FaultInjector* inj =
          fault_.load(std::memory_order_acquire)) {  // sync: buffer_fault
    const std::uint64_t seq = fault_seq_[static_cast<std::size_t>(client_id)]
                                  .fetch_add(1, std::memory_order_relaxed);
    if (inj->fires_rate(fault::Site::kShmExhaust,
                        fault::mix_key(static_cast<std::uint64_t>(client_id),
                                       seq))) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      return out_of_memory("injected shm exhaustion");
    }
  }
  Result<Block> r = policy_ == AllocPolicy::kMutexFirstFit
                        ? allocate_first_fit(size, client_id)
                        : allocate_partitioned(size, client_id);
  // The block is still private to the allocating thread here, so the
  // observer sees the allocation before anyone can touch the bytes.
  if (r.is_ok()) {
    if (ShmObserver* o = observer()) o->on_allocate(r.value());
  }
  return r;
}

void SharedBuffer::deallocate(const Block& block) {
  if (!block.valid()) return;
  deallocate_once(block);
#ifdef DMR_CHECK
  // Seeded double-release bug (tests/mc_test.cpp): return the block a
  // second time, corrupting the free list / partition counters. The
  // protocol checker and the free-list integrity invariant must both
  // flag it.
  if (test_hooks().double_deallocate) deallocate_once(block);
#endif
}

void SharedBuffer::deallocate_once(const Block& block) {
  // Observed *before* the bytes return to the allocator: a release is
  // always seen before any re-allocation of the same offset.
  if (ShmObserver* o = observer()) o->on_deallocate(block);
  if (policy_ == AllocPolicy::kMutexFirstFit) {
    deallocate_first_fit(block);
  } else {
    deallocate_partitioned(block);
  }
}

Result<Block> SharedBuffer::allocate_first_fit(Bytes size, int client_id) {
  MutexLock lock(mutex_);
  ShmObserver* o = observer();
  if (o) o->on_acquire({SyncPoint::Kind::kBufferMutex, this});
  auto release = [&] {
    if (o) o->on_release({SyncPoint::Kind::kBufferMutex, this});
  };
  for (auto it = free_by_offset_.begin(); it != free_by_offset_.end(); ++it) {
    if (it->second < size) continue;
    Block b{it->first, size, client_id};
    const Bytes remaining = it->second - size;
    const Bytes new_offset = it->first + size;
    free_by_offset_.erase(it);
    if (remaining > 0) free_by_offset_.emplace(new_offset, remaining);
    account_alloc(size);
    release();
    return b;
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  release();
  return out_of_memory("no free region of " + std::to_string(size) +
                       " bytes");
}

void SharedBuffer::deallocate_first_fit(const Block& block) {
  MutexLock lock(mutex_);
  ShmObserver* o = observer();
  if (o) o->on_acquire({SyncPoint::Kind::kBufferMutex, this});
  if (o) o->on_release({SyncPoint::Kind::kBufferMutex, this});
  Bytes offset = block.offset;
  Bytes length = block.size;
  // Coalesce with the next free range.
  auto next = free_by_offset_.lower_bound(offset);
  if (next != free_by_offset_.end() && offset + length == next->first) {
    length += next->second;
    next = free_by_offset_.erase(next);
  }
  // Coalesce with the previous free range.
  if (next != free_by_offset_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += length;
      account_free(block.size);
      return;
    }
  }
  free_by_offset_.emplace(offset, length);
  account_free(block.size);
}

Result<Block> SharedBuffer::allocate_partitioned(Bytes size, int client_id) {
  Partition& p = *partitions_[client_id];
  // The acquire-load of `live` below synchronizes with the server's
  // release-decrement in deallocate_partitioned — that edge is what
  // makes the rewind safe, and is mirrored to the race detector here.
  if (ShmObserver* o = observer()) {
    o->on_acquire({SyncPoint::Kind::kPartition, &p, client_id});
  }
  // Only this client bumps this partition's head, so plain loads suffice
  // for the decision; the server only ever decrements `live`.
  if (p.live.load(std::memory_order_acquire) == 0) {  // sync: partition_live
    // Everything previously handed to the server was consumed: rewind.
    p.head.store(0, std::memory_order_relaxed);
  }
  const Bytes h = p.head.load(std::memory_order_relaxed);
  if (h + size > p.length) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return out_of_memory("partition of client " + std::to_string(client_id) +
                         " full");
  }
  p.head.store(h + size, std::memory_order_relaxed);
  p.live.fetch_add(size, std::memory_order_release);  // sync: partition_live
  account_alloc(size);
  return Block{p.base + h, size, client_id};
}

void SharedBuffer::deallocate_partitioned(const Block& block) {
  Partition& p = *partitions_[block.client_id];
  if (ShmObserver* o = observer()) {
    o->on_release({SyncPoint::Kind::kPartition, &p, block.client_id});
  }
  p.live.fetch_sub(block.size, std::memory_order_release);  // sync: partition_live
  account_free(block.size);
}

Status SharedBuffer::check_integrity() const {
  const Bytes used_now = used();
  if (used_now > capacity_) {
    return internal_error("used " + std::to_string(used_now) +
                          " exceeds capacity " + std::to_string(capacity_) +
                          " (accounting underflow)");
  }
  if (policy_ == AllocPolicy::kMutexFirstFit) {
    MutexLock lock(mutex_);
    Bytes total_free = 0;
    Bytes prev_end = 0;
    bool first = true;
    for (const auto& [offset, length] : free_by_offset_) {
      if (length == 0) {
        return internal_error("free list holds an empty region at offset " +
                              std::to_string(offset));
      }
      if (offset + length < offset || offset + length > capacity_) {
        return internal_error("free region [" + std::to_string(offset) +
                              ", +" + std::to_string(length) +
                              ") exceeds capacity");
      }
      if (!first && offset < prev_end) {
        return internal_error("free regions overlap at offset " +
                              std::to_string(offset) +
                              " (double release corrupted the free list)");
      }
      if (!first && offset == prev_end) {
        return internal_error("adjacent free regions not coalesced at offset " +
                              std::to_string(offset));
      }
      prev_end = offset + length;
      total_free += length;
      first = false;
    }
    if (total_free + used_now != capacity_) {
      return internal_error(
          "free (" + std::to_string(total_free) + ") + used (" +
          std::to_string(used_now) + ") != capacity (" +
          std::to_string(capacity_) + ") — blocks lost or freed twice");
    }
    return Status::ok();
  }
  Bytes total_live = 0;
  for (int c = 0; c < num_clients_; ++c) {
    const Partition& p = *partitions_[c];
    const Bytes head = p.head.load(std::memory_order_relaxed);
    const Bytes live = p.live.load(std::memory_order_relaxed);
    if (head > p.length) {
      return internal_error("partition " + std::to_string(c) +
                            ": head past partition end");
    }
    if (live > head) {
      return internal_error(
          "partition " + std::to_string(c) + ": live " + std::to_string(live) +
          " exceeds head " + std::to_string(head) +
          " (double release underflowed the live counter)");
    }
    total_live += live;
  }
  if (total_live != used_now) {
    return internal_error("partition live sum (" + std::to_string(total_live) +
                          ") disagrees with used (" + std::to_string(used_now) +
                          ")");
  }
  return Status::ok();
}

}  // namespace dmr::shm

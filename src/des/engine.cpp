#include "des/engine.hpp"
#include <cstdio>
#include <cstdlib>

#include <cassert>

#include "des/process.hpp"

namespace dmr::des {

namespace {
#ifdef DMR_CHECK
thread_local DispatchHook t_dispatch_hook = nullptr;
thread_local void* t_dispatch_ctx = nullptr;
#endif
}  // namespace

void set_thread_dispatch_hook(DispatchHook hook, void* ctx) {
#ifdef DMR_CHECK
  t_dispatch_hook = hook;
  t_dispatch_ctx = ctx;
#else
  (void)hook;
  (void)ctx;
#endif
}

Engine::~Engine() {
  // Drain the queue without running anything.
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
  // Destroy all process frames the engine owns (done or suspended).
  for (auto h : owned_processes_) {
    if (h) h.destroy();
  }
}

void Engine::spawn(Process p) {
  auto h = p.release();
  assert(h && "spawn of empty process");
  owned_processes_.push_back(h);
  schedule_resume(h, now_);
}

void Engine::schedule_resume(std::coroutine_handle<> h, Time t) {
  assert(t >= now_ && "scheduling into the past");
  auto* ev = new Event{t, next_seq_++, h, {}, false};
  queue_.push(ev);
}

std::uint64_t Engine::schedule_callback(Time t, std::function<void()> fn) {
  assert(t >= now_ && "scheduling into the past");
  auto* ev = new Event{t, next_seq_++, nullptr, std::move(fn), false};
  queue_.push(ev);
  active_callbacks_.emplace(ev->seq, ev);
  return ev->seq;
}

void Engine::cancel(std::uint64_t id) {
  auto it = active_callbacks_.find(id);
  if (it == active_callbacks_.end()) return;
  it->second->cancelled = true;
  active_callbacks_.erase(it);
}

Engine::Event* Engine::pop_next() {
  while (!queue_.empty()) {
    Event* ev = queue_.top();
    queue_.pop();
    if (ev->cancelled) {
      delete ev;
      continue;
    }
    return ev;
  }
  return nullptr;
}

void Engine::dispatch(Event* ev) {
  assert(ev->t >= now_);
  now_ = ev->t;
  ++events_processed_;
#ifdef DMR_CHECK
  if (t_dispatch_hook) {
    t_dispatch_hook(t_dispatch_ctx, ev->t, ev->seq, !ev->handle);
  }
#endif
  static const bool trace = std::getenv("DMR_ENGINE_TRACE") != nullptr;
  if (trace && events_processed_ > 500 && events_processed_ < 540) {
    std::fprintf(stderr, "[ev %llu] t=%.9f %s %p\n",
                 static_cast<unsigned long long>(events_processed_), now_,
                 ev->handle ? "handle" : "callback",
                 ev->handle ? ev->handle.address() : nullptr);
  }
  if (ev->handle) {
    auto h = ev->handle;
    delete ev;
    h.resume();
  } else {
    auto fn = std::move(ev->callback);
    active_callbacks_.erase(ev->seq);
    delete ev;
    fn();
  }
}

Time Engine::run() {
  static const bool debug = std::getenv("DMR_ENGINE_DEBUG") != nullptr;
  while (Event* ev = pop_next()) {
    dispatch(ev);
    if (debug && events_processed_ % 1000000 == 0) {
      std::fprintf(stderr, "[engine] events=%llu t=%.6f queue=%zu\n",
                   static_cast<unsigned long long>(events_processed_), now_,
                   queue_.size());
    }
  }
  return now_;
}

Time Engine::run_until(Time t_end) {
  while (!queue_.empty()) {
    Event* ev = pop_next();
    if (!ev) break;
    if (ev->t > t_end) {
      // Put it back: simplest is to re-push (seq keeps ordering stable).
      queue_.push(ev);
      now_ = t_end;
      return now_;
    }
    dispatch(ev);
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace dmr::des

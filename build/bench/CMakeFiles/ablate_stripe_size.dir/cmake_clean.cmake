file(REMOVE_RECURSE
  "CMakeFiles/ablate_stripe_size.dir/ablate_stripe_size.cpp.o"
  "CMakeFiles/ablate_stripe_size.dir/ablate_stripe_size.cpp.o.d"
  "ablate_stripe_size"
  "ablate_stripe_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_stripe_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for dmr_common.
# This may be replaced when dependencies are built.

// Golden-output tests for tools/dmr_lint: each fixture mini-tree under
// tools/dmr_lint/testdata/ exercises one rule (clean pass, each
// violation class, allowlist suppression), plus a self-check that the
// real tree is clean. The tests spawn the actual binary — the contract
// under test is the CLI (exit code + findings lines), exactly what
// scripts/check.sh --static consumes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef DMR_LINT_BIN
#error "DMR_LINT_BIN must be defined by the build"
#endif
#ifndef DMR_LINT_TESTDATA
#error "DMR_LINT_TESTDATA must be defined by the build"
#endif
#ifndef DMR_REPO_ROOT
#error "DMR_REPO_ROOT must be defined by the build"
#endif

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

LintRun run_lint(const std::string& args) {
  // Per-process output file: ctest runs each TEST as its own process,
  // concurrently — a shared fixed name makes parallel runs clobber
  // each other's captured output (a long-standing intermittent flake).
  const std::string out_path = ::testing::TempDir() + "/dmr_lint_out_" +
                               std::to_string(::getpid()) + ".txt";
  const std::string cmd = std::string(DMR_LINT_BIN) + " " + args + " > " +
                          out_path + " 2>&1";
  const int rc = std::system(cmd.c_str());
  LintRun r;
  r.exit_code = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  std::ifstream in(out_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  r.output = ss.str();
  return r;
}

LintRun run_on_fixture(const std::string& fixture,
                       const std::string& extra = "") {
  const std::string root = std::string(DMR_LINT_TESTDATA) + "/" + fixture;
  return run_lint("--root " + root + " " + extra);
}

TEST(DmrLint, CleanTreePasses) {
  const LintRun r = run_on_fixture("clean");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 unsuppressed"), std::string::npos) << r.output;
}

TEST(DmrLint, BareStdMutexIsFlagged) {
  const LintRun r = run_on_fixture("bare_mutex");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[mutex-annotation]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/q.hpp:4"), std::string::npos) << r.output;
}

TEST(DmrLint, MutexGuardingNothingIsFlagged) {
  const LintRun r = run_on_fixture("idle_mutex");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("lonely_mutex_"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("guards nothing"), std::string::npos) << r.output;
}

TEST(DmrLint, ClockMixingIsFlaggedPerFunction) {
  const LintRun r = run_on_fixture("clock_mix");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[clock-mixing]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'drift'"), std::string::npos) << r.output;
  // The sim-only sibling in the same file must NOT be flagged.
  EXPECT_EQ(r.output.find("pure_sim"), std::string::npos) << r.output;
}

TEST(DmrLint, DiscardedStatusIsFlagged) {
  const LintRun r = run_on_fixture("discarded");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[discarded-status]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("'do_io'"), std::string::npos) << r.output;
  // Exactly one finding: the handled call site is clean.
  EXPECT_NE(r.output.find("1 finding(s), 1 unsuppressed"), std::string::npos)
      << r.output;
}

TEST(DmrLint, UnregisteredTraceCategoryIsFlagged) {
  const LintRun r = run_on_fixture("trace_cat");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // Both the declaration gap and the use site are reported.
  EXPECT_NE(r.output.find("kNew"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("src/trace/event.hpp"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("src/user.cpp"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("kDes"), std::string::npos) << r.output;
}

TEST(DmrLint, UndocumentedConfigKeyIsFlagged) {
  const LintRun r = run_on_fixture("config_doc");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[config-doc]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("secret_knob"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("documented_key"), std::string::npos) << r.output;
}

TEST(DmrLint, AllowlistSuppressesJustifiedFinding) {
  const std::string root = std::string(DMR_LINT_TESTDATA) + "/allowed";
  const LintRun r =
      run_lint("--root " + root + " --allowlist " + root + "/allowlist.txt");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("1 finding(s), 0 unsuppressed"), std::string::npos)
      << r.output;
}

TEST(DmrLint, AllowlistEntryWithoutJustificationIsItselfAFinding) {
  const std::string root = std::string(DMR_LINT_TESTDATA) + "/bad_allowlist";
  const LintRun r =
      run_lint("--root " + root + " --allowlist " + root + "/allowlist.txt");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[allowlist]"), std::string::npos) << r.output;
  // The malformed entry suppresses nothing: the underlying finding stays.
  EXPECT_NE(r.output.find("[mutex-annotation]"), std::string::npos)
      << r.output;
}

TEST(DmrLint, JsonOutputIsWritten) {
  const std::string json =
      ::testing::TempDir() + "/dmr_lint_findings.json";
  const LintRun r = run_on_fixture("bare_mutex", "--json " + json);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::ifstream in(json);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"rule\": \"mutex-annotation\""),
            std::string::npos)
      << ss.str();
  EXPECT_NE(ss.str().find("\"unsuppressed\": 1"), std::string::npos)
      << ss.str();
}

// The gate itself: the real tree must stay clean (with its audited
// allowlist). A regression here means a new violation of one of the
// five project rules landed.
TEST(DmrLint, RealTreeIsClean) {
  const LintRun r = run_lint(std::string("--root ") + DMR_REPO_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace

#include "core/damaris.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/log.hpp"
#include "trace/tracer.hpp"

namespace dmr::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

shm::AllocPolicy policy_from(const config::Config& cfg) {
  return cfg.buffer_policy() == "partitioned"
             ? shm::AllocPolicy::kPartitioned
             : shm::AllocPolicy::kMutexFirstFit;
}

/// Fault-category instant on the node's lane (no-op when untraced).
void trace_fault(int node_id, const char* name, std::int64_t iteration) {
  if (trace::Tracer* tr = trace::current();
      tr != nullptr && tr->enabled(trace::Category::kFault)) {
    tr->record_instant({trace::EntityType::kNode,
                        static_cast<std::uint32_t>(node_id)},
                       trace::Category::kFault, name, tr->wall_now(), 0,
                       static_cast<std::int32_t>(iteration));
  }
}

}  // namespace

DamarisNode::Shard::Shard(std::string output_dir, std::string prefix,
                          int node_id, int shard_id, int num_shards)
    : id(shard_id),
      persistency(std::move(output_dir),
                  num_shards > 1 ? prefix + "_s" + std::to_string(shard_id)
                                 : std::move(prefix),
                  node_id) {}

DamarisNode::DamarisNode(config::Config cfg, int num_clients,
                         NodeOptions opts)
    : cfg_(std::move(cfg)),
      num_clients_(num_clients),
      opts_(std::move(opts)),
      buffer_(std::make_unique<shm::SharedBuffer>(
          cfg_.buffer_size(), policy_from(cfg_), num_clients)),
      client_stats_(num_clients),
      async_workers_(static_cast<std::size_t>(std::max(num_clients, 0))) {
  // One server shard per configured dedicated core; never more shards
  // than clients.
  const int shards =
      std::clamp(cfg_.dedicated_cores(), 1, std::max(1, num_clients_));
  for (int s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        opts_.output_dir, opts_.file_prefix, opts_.node_id, s, shards));
  }
  for (int c = 0; c < num_clients_; ++c) {
    ++shards_[shard_of(c)]->clients;
  }

  // Intern all configured variable and event names.
  for (const auto& [name, var] : cfg_.variables()) {
    ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
    names_.push_back(name);
  }
  for (const auto& [name, ev] : cfg_.events()) {
    if (ids_.count(name)) continue;
    ids_.emplace(name, static_cast<std::uint32_t>(names_.size()));
    names_.push_back(name);
  }
  // Reserved internal event driving iteration completion.
  ids_.emplace("..end_iteration", static_cast<std::uint32_t>(names_.size()));
  names_.push_back("..end_iteration");
  // Steerable parameters start at their configured values.
  for (const auto& [name, decl] : cfg_.parameters()) {
    parameters_.emplace(name, decl.value);
  }
  register_builtin_actions();
  server_stats_.shards = shards;

  // Resilience policy: explicit NodeOptions override wins, else the
  // configuration's <resilience> section (defaults reproduce the
  // historical behaviour: no retries, no fallbacks).
  resilience_ = opts_.resilience ? *opts_.resilience : cfg_.resilience();
  // Fault injector: explicit NodeOptions override wins, else build one
  // from the configuration's <fault> plan (none = fault-free).
  if (opts_.injector != nullptr) {
    injector_ = opts_.injector;
  } else if (!cfg_.fault_plan().empty()) {
    owned_injector_ = std::make_unique<fault::FaultInjector>(cfg_.fault_plan());
    injector_ = owned_injector_.get();
  }
  buffer_->set_fault_injector(injector_);
  degrade_ = std::make_unique<fault::DegradeController>(resilience_.degrade,
                                                        opts_.node_id);
  for (auto& shard : shards_) {
    shard->persistency.set_resilience(resilience_.retry);
    shard->persistency.set_fault_injector(injector_);
  }
  if (opts_.fault_checker != nullptr) opts_.fault_checker->watch(*buffer_);

  if (opts_.protocol_check) {
    checker_ = std::make_unique<check::ProtocolChecker>();
    checker_->observe(*buffer_);
    for (auto& shard : shards_) checker_->observe(shard->queue);
  }
}

DamarisNode::~DamarisNode() {
  // Submission workers exist independently of started_ and hold
  // references into the buffer and queues: retire them first.
  stop_async_workers();
  if (started_.load(std::memory_order_acquire)) {
    for (auto& shard : shards_) shard->queue.close();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }
}

std::uint32_t DamarisNode::name_id(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? ~0u : it->second;
}

Status DamarisNode::start() {
  if (started_.load(std::memory_order_acquire))
    return failed_precondition("node already started");
  // Instantiate the <plugins> in-situ chain before any shard thread
  // exists: a bad declaration (unknown type) fails start() instead of
  // surfacing mid-run. Rebuilt on every start so a restarted node gets
  // fresh accounting.
  if (!cfg_.plugins().empty()) {
    auto pipeline = plugin::build_pipeline(cfg_.plugins(), plugin_types_);
    if (!pipeline.is_ok()) return pipeline.status();
    block_plugins_ = std::move(pipeline).value();
  } else {
    block_plugins_.reset();
  }
  started_.store(true, std::memory_order_release);
  start_time_ = Clock::now();
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { server_main(*s); });
  }
  return Status::ok();
}

Client DamarisNode::client(int id) { return Client(this, id); }

Status DamarisNode::stop() {
  if (!started_.load(std::memory_order_acquire))
    return failed_precondition("node not started");
  // Drain queued async submissions while the servers can still consume
  // them, then close the shard queues.
  stop_async_workers();
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  started_.store(false, std::memory_order_release);
  if (checker_) {
    const auto violations = checker_->finalize();
    for (const auto& v : violations) {
      DMR_LOG(kError, "damaris") << "shm protocol: " << v.to_string();
    }
    MutexLock lock(stats_mutex_);
    server_stats_.protocol_violations = violations.size();
  }
  return Status::ok();
}

ServerStats DamarisNode::stats() const {
  MutexLock lock(stats_mutex_);
  ServerStats s = server_stats_;
  for (const auto& shard : shards_) {
    // PersistencyStats are only mutated by the shard's (now idle or
    // joined) thread; summing here is fine for monitoring purposes.
    const auto& p = shard->persistency.stats();
    s.persistency.files_written += p.files_written;
    s.persistency.datasets_written += p.datasets_written;
    s.persistency.raw_bytes += p.raw_bytes;
    s.persistency.stored_bytes += p.stored_bytes;
    s.persistency.retries += p.retries;
    s.persistency.failed_writes += p.failed_writes;
    s.stages.merge(shard->persistency.stage_stats());
  }
  s.degrade = degrade_->stats();
  // Ingest is what the clients paid to hand their data over.
  for (const ClientStats& c : client_stats_) {
    iopath::StageCounters& ingest = s.stages.of(iopath::StageKind::kIngest);
    ingest.ops += c.writes;
    ingest.seconds += c.write_seconds;
    ingest.max_seconds = std::max(ingest.max_seconds, c.max_write_seconds);
    ingest.bytes_in += c.bytes_written;
    ingest.bytes_out += c.bytes_written;
  }
  return s;
}

ClientStats DamarisNode::client_stats(int id) const {
  MutexLock lock(stats_mutex_);
  return client_stats_.at(id);
}

std::map<std::string, double> DamarisNode::analytics() const {
  MutexLock lock(stats_mutex_);
  return analytics_;
}

void DamarisNode::publish_analytic(const std::string& key, double value) {
  MutexLock lock(stats_mutex_);
  analytics_[key] = value;
}

std::optional<std::string> DamarisNode::parameter(
    const std::string& name) const {
  MutexLock lock(params_mutex_);
  auto it = parameters_.find(name);
  if (it == parameters_.end()) return std::nullopt;
  return it->second;
}

std::optional<long long> DamarisNode::parameter_int(
    const std::string& name) const {
  auto v = parameter(name);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const long long out = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return out;
}

std::optional<double> DamarisNode::parameter_double(
    const std::string& name) const {
  auto v = parameter(name);
  if (!v) return std::nullopt;
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') return std::nullopt;
  return out;
}

Status DamarisNode::set_parameter(const std::string& name,
                                  const std::string& value) {
  MutexLock lock(params_mutex_);
  auto it = parameters_.find(name);
  if (it == parameters_.end()) {
    return not_found("parameter '" + name + "' not declared");
  }
  it->second = value;
  return Status::ok();
}

Status DamarisNode::signal_external(const std::string& event,
                                    std::int64_t iteration) {
  const std::uint32_t id = name_id(event);
  if (id == ~0u || !cfg_.find_event(event)) {
    return not_found("event '" + event + "' not configured");
  }
  shm::Message msg;
  msg.type = shm::MessageType::kUserEvent;
  msg.client_id = -1;  // external tool, not a client
  msg.iteration = iteration;
  msg.name_id = id;
  if (!shards_[0]->queue.push(msg)) {
    return resource_busy("event '" + event +
                         "' dropped: server queue already closed");
  }
  return Status::ok();
}

// ---------------------------------------------------------------- server

void DamarisNode::server_main(Shard& shard) {
  while (auto msg = shard.queue.pop()) {
    const auto t0 = Clock::now();
    handle_message(shard, *msg);
    const double dt = seconds_since(t0);
    MutexLock lock(stats_mutex_);
    server_stats_.busy_seconds += dt;
    ++server_stats_.messages_handled;
    server_stats_.elapsed_seconds = seconds_since(start_time_);
  }
  // Queue closed: flush anything still pending (e.g. a run that never
  // called end_iteration on its last step).
  for (std::int64_t it : shard.metadata.pending_iterations()) {
    complete_iteration(shard, it);
  }
  MutexLock lock(stats_mutex_);
  server_stats_.elapsed_seconds = seconds_since(start_time_);
}

void DamarisNode::handle_message(Shard& shard, const shm::Message& msg) {
  switch (msg.type) {
    case shm::MessageType::kWriteNotification: {
      VariableBlock block;
      block.variable = names_.at(msg.name_id);
      block.iteration = msg.iteration;
      block.source = msg.client_id;
      block.block = msg.block;
      block.size = msg.block.size;
      if (const format::Layout* l = cfg_.layout_of(block.variable)) {
        block.layout = *l;
      }
      if (auto replaced = shard.metadata.add(std::move(block))) {
        buffer_->deallocate(replaced->block);
        if (opts_.fault_checker != nullptr) {
          opts_.fault_checker->note_superseded(replaced->iteration);
        }
      }
      break;
    }
    case shm::MessageType::kUserEvent: {
      const std::string& name = names_.at(msg.name_id);
      // The reserved "..end_iteration" event drives iteration completion.
      if (name == "..end_iteration") {
        if (++shard.end_counts[msg.iteration] == shard.clients) {
          shard.end_counts.erase(msg.iteration);
          maybe_crash(shard, msg.iteration);
          complete_iteration(shard, msg.iteration);
          maybe_close_queue(shard, msg.iteration);
        }
        break;
      }
      const config::EventDecl* decl = cfg_.find_event(name);
      if (!decl) {
        DMR_LOG(kWarn, "damaris") << "unknown event '" << name << "'";
        break;
      }
      if (msg.client_id < 0) {
        // External steering tools bypass the scope counting: their
        // event runs once, immediately.
        run_event(shard, *decl, msg.iteration, /*source=*/-1);
      } else if (decl->scope == "global") {
        // Fires once all clients of this shard have signalled (the
        // shard *is* the symmetric group, §V-A).
        auto key = std::make_pair(msg.name_id, msg.iteration);
        if (++shard.event_counts[key] == shard.clients) {
          shard.event_counts.erase(key);
          run_event(shard, *decl, msg.iteration, /*source=*/-1);
        }
      } else {
        run_event(shard, *decl, msg.iteration, msg.client_id);
      }
      break;
    }
    case shm::MessageType::kClientFinalize: {
      if (++shard.finalized_clients == shard.clients) {
        shard.queue.close();
      }
      break;
    }
  }
}

void DamarisNode::run_event(Shard& shard, const config::EventDecl& decl,
                            std::int64_t iteration, int source) {
  const PluginFn* fn = plugins_.find(decl.action);
  if (!fn) {
    DMR_LOG(kWarn, "damaris")
        << "event '" << decl.name << "': unknown action '" << decl.action
        << "'";
    return;
  }
  EventContext ctx{*this,     shard.metadata, *buffer_, decl.name,
                   iteration, source,         shard.id};
  (*fn)(ctx);
  MutexLock lock(stats_mutex_);
  ++server_stats_.events_handled;
}

void DamarisNode::complete_iteration(Shard& shard, std::int64_t iteration) {
  std::vector<VariableBlock> blocks = shard.metadata.take_iteration(iteration);
  if (blocks.empty()) return;

  IterationRecord rec;
  rec.iteration = iteration;
  rec.shard = shard.id;
  rec.blocks = blocks.size();
  for (const auto& b : blocks) rec.raw_bytes += b.size;

  // The in-situ window (DESIGN.md §15): every block of the iteration is
  // published and still in shared memory, persist has not started —
  // plugins read the complete data here, on the dedicated core, while
  // the clients already compute the next iteration. A zero-plugin
  // configuration takes the exact historical path (no views built, no
  // pipeline call), which is what the byte-identical parity test pins.
  if (block_plugins_ != nullptr && !block_plugins_->empty()) {
    std::vector<plugin::BlockView> views;
    views.reserve(blocks.size());
    for (const auto& b : blocks) {
      plugin::BlockView v;
      v.variable = b.variable;
      v.iteration = b.iteration;
      v.source = b.source;
      v.layout = &b.layout;
      v.data = std::span<const std::byte>(buffer_->data(b.block),
                                          static_cast<std::size_t>(b.size));
      views.push_back(v);
    }
    plugin::PluginContext ctx;
    ctx.shard = shard.id;
    ctx.publish = [this](const std::string& key, double value) {
      publish_analytic(key, value);
    };
    const auto p0 = Clock::now();
    Status plugin_status =
        block_plugins_->run_iteration(iteration, views, ctx);
    rec.plugin_seconds = seconds_since(p0);
    if (!plugin_status.is_ok()) {
      // Already counted + logged per plugin by the pipeline; the
      // iteration proceeds regardless (a broken plugin must never fail
      // a persist).
      DMR_LOG(kWarn, "damaris")
          << "plugin chain reported an error on iteration " << iteration
          << ": " << plugin_status.to_string();
    }
  }

  const auto t0 = Clock::now();
  Status persist_status = Status::ok();
  if (opts_.persist_on_end_iteration) {
    const std::uint64_t retries_before = shard.persistency.stats().retries;
    persist_status =
        shard.persistency.write_blocks(iteration, blocks, *buffer_, cfg_);
    if (!persist_status.is_ok()) {
      DMR_LOG(kError, "damaris")
          << "persist failed for iteration " << iteration << ": "
          << persist_status.to_string();
    }
    if (opts_.fault_checker != nullptr) {
      const std::uint64_t retried =
          shard.persistency.stats().retries - retries_before;
      for (std::uint64_t i = 0; i < retried; ++i) {
        opts_.fault_checker->note_retry();
      }
      opts_.fault_checker->note_persist(shard.id, iteration,
                                        static_cast<int>(blocks.size()),
                                        persist_status);
    }
  }
  rec.write_seconds = seconds_since(t0);
  rec.persisted = persist_status.is_ok();

  for (const auto& b : blocks) buffer_->deallocate(b.block);

  MutexLock lock(stats_mutex_);
  if (!persist_status.is_ok()) {
    ++server_stats_.failed_iterations;
    if (server_stats_.first_error.is_ok()) {
      server_stats_.first_error = persist_status;
    }
  }
  server_stats_.iterations.push_back(rec);
}

void DamarisNode::maybe_crash(Shard& shard, std::int64_t iteration) {
  if (injector_ == nullptr ||
      !injector_->fires(fault::Site::kCoreCrash,
                        static_cast<double>(iteration),
                        fault::mix_key(static_cast<std::uint64_t>(shard.id),
                                       static_cast<std::uint64_t>(iteration)))) {
    return;
  }
  double stall = injector_->stall_of(fault::Site::kCoreCrash);
  if (stall <= 0.0) stall = 0.005;
  DMR_LOG(kWarn, "damaris") << "injected crash of shard " << shard.id
                            << " at iteration " << iteration << " ("
                            << stall << " s restart)";
  degrade_->on_server_down();
  const double t0 = [] {
    if (trace::Tracer* tr = trace::current()) return tr->wall_now();
    return 0.0;
  }();
  std::this_thread::sleep_for(std::chrono::duration<double>(stall));
  degrade_->on_server_up();
  if (trace::Tracer* tr = trace::current();
      tr != nullptr && tr->enabled(trace::Category::kFault)) {
    tr->record_span({trace::EntityType::kNode,
                     static_cast<std::uint32_t>(opts_.node_id)},
                    trace::Category::kFault, "core-restart", t0,
                    tr->wall_now() - t0, 0,
                    static_cast<std::int32_t>(iteration));
  }
  MutexLock lock(stats_mutex_);
  ++server_stats_.crashes;
}

void DamarisNode::maybe_close_queue(Shard& shard, std::int64_t iteration) {
  if (injector_ == nullptr ||
      !injector_->fires(fault::Site::kShmQueueClose,
                        static_cast<double>(iteration),
                        fault::mix_key(static_cast<std::uint64_t>(shard.id),
                                       static_cast<std::uint64_t>(iteration)))) {
    return;
  }
  DMR_LOG(kWarn, "damaris") << "injected queue close of shard " << shard.id
                            << " after iteration " << iteration;
  trace_fault(opts_.node_id, "queue-close", iteration);
  shard.queue.close();
}

void DamarisNode::register_builtin_actions() {
  // "write": persist the signalled iteration immediately (on the shard
  // that received the event).
  plugins_.register_action("write", [this](EventContext& ctx) {
    complete_iteration(*shards_[ctx.shard], ctx.iteration);
  });
  // "stats": publish min/max/mean of every float32 block of the
  // iteration (a representative inline-analytics plugin).
  plugins_.register_action("stats", [this](EventContext& ctx) {
    for (const VariableBlock* b : ctx.metadata.blocks_of(ctx.iteration)) {
      if (b->layout.type != format::DataType::kFloat32) continue;
      const std::size_t n = b->size / sizeof(float);
      if (n == 0) continue;
      const float* vals =
          reinterpret_cast<const float*>(buffer_->data(b->block));
      float lo = vals[0], hi = vals[0];
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        lo = std::min(lo, vals[i]);
        hi = std::max(hi, vals[i]);
        sum += vals[i];
      }
      publish_analytic(b->variable + ".min", lo);
      publish_analytic(b->variable + ".max", hi);
      publish_analytic(b->variable + ".mean", sum / static_cast<double>(n));
    }
  });
}

// ---------------------------------------------------------------- client

std::chrono::milliseconds DamarisNode::block_timeout() const {
  return resilience_.degrade.block_timeout_ms >= 0
             ? std::chrono::milliseconds(resilience_.degrade.block_timeout_ms)
             : opts_.alloc_timeout;
}

Result<shm::Block> DamarisNode::blocking_allocate(Bytes size, int client) {
  const auto deadline = Clock::now() + block_timeout();
  bool stalled = false;
  for (;;) {
    auto r = buffer_->allocate(size, client);
    if (r.is_ok()) {
      if (stalled) {
        MutexLock lock(stats_mutex_);
        ++client_stats_[client].alloc_stalls;
      }
      return r;
    }
    if (r.status().code() != ErrorCode::kOutOfMemory) return r;
    if (Clock::now() >= deadline) {
      return out_of_memory("allocation timed out after waiting for server");
    }
    stalled = true;
    std::this_thread::yield();
  }
}

Status Client::write(const std::string& variable, std::int64_t iteration,
                     std::span<const std::byte> data) {
  const format::Layout* layout = node_->cfg_.layout_of(variable);
  if (!layout) return not_found("variable '" + variable + "' not configured");
  if (data.size() != layout->byte_size()) {
    return invalid_argument("variable '" + variable + "': payload is " +
                            std::to_string(data.size()) + " bytes, layout " +
                            std::to_string(layout->byte_size()));
  }
  return write_sized(variable, iteration, data);
}

Status Client::write_sized(const std::string& variable,
                           std::int64_t iteration,
                           std::span<const std::byte> data) {
  const std::uint32_t id = node_->name_id(variable);
  if (id == ~0u) return not_found("variable '" + variable + "' unknown");
  // The blocking API is submit + wait on the async path. No payload
  // copy: the caller's buffer outlives the wait.
  return node_
      ->submit_copy_write(id_, id, iteration, data, /*copy=*/false, {})
      .wait();
}

WriteTicket Client::write_async(const std::string& variable,
                                std::int64_t iteration,
                                std::span<const std::byte> data,
                                AsyncWriteOptions opts) {
  const format::Layout* layout = node_->cfg_.layout_of(variable);
  if (!layout) {
    return node_->failed_ticket(
        not_found("variable '" + variable + "' not configured"),
        opts.on_complete);
  }
  if (data.size() != layout->byte_size()) {
    return node_->failed_ticket(
        invalid_argument("variable '" + variable + "': payload is " +
                         std::to_string(data.size()) + " bytes, layout " +
                         std::to_string(layout->byte_size())),
        opts.on_complete);
  }
  return write_sized_async(variable, iteration, data, std::move(opts));
}

WriteTicket Client::write_sized_async(const std::string& variable,
                                      std::int64_t iteration,
                                      std::span<const std::byte> data,
                                      AsyncWriteOptions opts) {
  const std::uint32_t id = node_->name_id(variable);
  if (id == ~0u) {
    return node_->failed_ticket(not_found("variable '" + variable + "' unknown"),
                                opts.on_complete);
  }
  return node_->submit_copy_write(id_, id, iteration, data, /*copy=*/true,
                                  std::move(opts));
}

// ------------------------------------------------- async submission path

WriteTicket DamarisNode::failed_ticket(const Status& status,
                                       const WriteCallback& cb) {
  auto state = std::make_shared<detail::TicketState>(
      ticket_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  {
    MutexLock lock(state->mutex);
    state->status = status;
    state->outcome = WriteOutcome::kFailed;
    state->completion_seq =
        ticket_completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (cb) cb(WriteTicket(state));
  {
    MutexLock lock(state->mutex);
    state->done = true;
  }
  state->cv.notify_all();
  return WriteTicket(std::move(state));
}

WriteTicket DamarisNode::submit_copy_write(int client, std::uint32_t name_id,
                                           std::int64_t iteration,
                                           std::span<const std::byte> data,
                                           bool copy, AsyncWriteOptions opts) {
  AsyncSubmission sub;
  sub.kind = AsyncSubmission::Kind::kCopyWrite;
  sub.name_id = name_id;
  sub.iteration = iteration;
  if (copy) {
    sub.owned.assign(data.begin(), data.end());
    sub.view = std::span<const std::byte>(sub.owned);
  } else {
    sub.view = data;
  }
  sub.deps.reserve(opts.after.size());
  for (const WriteTicket& dep : opts.after) {
    if (dep.state_ != nullptr) sub.deps.push_back(dep.state_);
  }
  sub.on_complete = std::move(opts.on_complete);
  return submit(client, std::move(sub));
}

WriteTicket DamarisNode::submit_publish(int client, std::uint32_t name_id,
                                        std::int64_t iteration,
                                        shm::Block block) {
  AsyncSubmission sub;
  sub.kind = AsyncSubmission::Kind::kPublishBlock;
  sub.name_id = name_id;
  sub.iteration = iteration;
  sub.block = block;
  return submit(client, std::move(sub));
}

WriteTicket DamarisNode::submit(int client, AsyncSubmission sub) {
  if (client < 0 || client >= num_clients_) {
    return failed_ticket(
        invalid_argument("client id " + std::to_string(client) +
                         " out of range"),
        sub.on_complete);
  }
  auto state = std::make_shared<detail::TicketState>(
      ticket_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  sub.state = state;
  AsyncWorker* worker = async_worker(client);
  {
    MutexLock lock(worker->mutex);
    // `owned` moves with the submission; re-anchor the view on arrival.
    if (!sub.owned.empty()) sub.view = std::span<const std::byte>(sub.owned);
    worker->queue.push_back(std::move(sub));
  }
  worker->cv.notify_all();
  return WriteTicket(std::move(state));
}

DamarisNode::AsyncWorker* DamarisNode::async_worker(int client) {
  MutexLock lock(async_mutex_);
  auto& slot = async_workers_[static_cast<std::size_t>(client)];
  if (!slot) {
    slot = std::make_unique<AsyncWorker>();
    AsyncWorker* w = slot.get();
    w->thread = std::thread([this, client, w] { async_worker_main(client, *w); });
  }
  return slot.get();
}

void DamarisNode::async_worker_main(int client, AsyncWorker& worker) {
  for (;;) {
    AsyncSubmission sub;
    {
      MutexLock lock(worker.mutex);
      while (worker.queue.empty() && !worker.stopping) {
        worker.cv.wait(worker.mutex);
      }
      if (worker.queue.empty()) return;  // stopping and fully drained
      sub = std::move(worker.queue.front());
      worker.queue.pop_front();
      if (!sub.owned.empty()) sub.view = std::span<const std::byte>(sub.owned);
      worker.in_flight = true;
    }
    // Honour dependences before touching shared memory. Cycles are
    // impossible (a ticket only depends on already-created tickets).
    for (const detail::TicketStatePtr& dep : sub.deps) {
      MutexLock lock(dep->mutex);
      while (!dep->done) dep->cv.wait(dep->mutex);
    }
    execute_submission(client, sub);
    {
      MutexLock lock(worker.mutex);
      worker.in_flight = false;
    }
    worker.cv.notify_all();  // wake drain_async() fences
  }
}

void DamarisNode::execute_submission(int client, AsyncSubmission& sub) {
  const auto t0 = Clock::now();
  WriteOutcome outcome = WriteOutcome::kFailed;
  Status st;
  Bytes bytes = 0;
  if (sub.kind == AsyncSubmission::Kind::kCopyWrite) {
    st = client_write(client, sub.name_id, sub.iteration, sub.view, &outcome);
    bytes = sub.view.size();
  } else {
    st = publish_block(client, sub.name_id, sub.iteration, sub.block, &outcome);
    bytes = sub.block.size;
  }
  const double dt = seconds_since(t0);
  if (st.is_ok()) {
    MutexLock lock(stats_mutex_);
    ClientStats& cs = client_stats_[client];
    ++cs.writes;
    cs.bytes_written += bytes;
    cs.write_seconds += dt;
    cs.max_write_seconds = std::max(cs.max_write_seconds, dt);
  }
  // Ordering contract (core/async.hpp): publish Status/outcome, run the
  // callback, and only then flip done — wait() returning implies the
  // callback finished.
  const std::uint64_t seq =
      ticket_completions_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    MutexLock lock(sub.state->mutex);
    sub.state->status = st;
    sub.state->outcome = outcome;
    sub.state->completion_seq = seq;
  }
  if (sub.on_complete) sub.on_complete(WriteTicket(sub.state));
  {
    MutexLock lock(sub.state->mutex);
    sub.state->done = true;
  }
  sub.state->cv.notify_all();
}

void DamarisNode::drain_async(int client) {
  AsyncWorker* worker = nullptr;
  {
    MutexLock lock(async_mutex_);
    if (client < 0 ||
        client >= static_cast<int>(async_workers_.size())) {
      return;
    }
    worker = async_workers_[static_cast<std::size_t>(client)].get();
  }
  if (worker == nullptr) return;
  MutexLock lock(worker->mutex);
  while (!worker->queue.empty() || worker->in_flight) {
    worker->cv.wait(worker->mutex);
  }
}

void DamarisNode::stop_async_workers() {
  std::vector<std::unique_ptr<AsyncWorker>> retired;
  {
    MutexLock lock(async_mutex_);
    for (auto& slot : async_workers_) {
      if (slot) retired.push_back(std::move(slot));
    }
  }
  for (auto& worker : retired) {
    {
      MutexLock lock(worker->mutex);
      worker->stopping = true;
    }
    worker->cv.notify_all();
    if (worker->thread.joinable()) worker->thread.join();
  }
}

// --------------------------------------------- the write path as tasks

des::Task<Result<shm::Block>> DamarisNode::ingest_stage(int client,
                                                        std::int64_t iteration,
                                                        Bytes size) {
  // Three ways this can come back without a block, all funnelled
  // through the degrade controller: an injected exhaustion window, a
  // real exhaustion (timeout), or — in an already-degraded mode — a
  // single failed probe (no blocking wait: a degraded client must not
  // stall the simulation).
  if (injector_ != nullptr &&
      injector_->fires_window(fault::Site::kShmExhaust,
                              static_cast<double>(iteration))) {
    co_return out_of_memory("injected shm exhaustion window at iteration " +
                            std::to_string(iteration));
  }
  if (degrade_->mode() != fault::DegradeMode::kNormal) {
    co_return buffer_->allocate(size, client);
  }
  co_return blocking_allocate(size, client);
}

des::Task<Status> DamarisNode::publish_stage(int client,
                                             std::uint32_t name_id,
                                             std::int64_t iteration,
                                             std::span<const std::byte> data,
                                             shm::Block block,
                                             WriteOutcome* outcome) {
  std::memcpy(buffer_->data(block), data.data(), data.size());
  buffer_->note_write(block);

  shm::Message msg;
  msg.type = shm::MessageType::kWriteNotification;
  msg.client_id = client;
  msg.iteration = iteration;
  msg.name_id = name_id;
  msg.block = block;
  if (shards_[shard_of(client)]->queue.push(msg)) {
    degrade_->on_clear();
    if (opts_.fault_checker != nullptr) {
      opts_.fault_checker->note_write(client, iteration,
                                      check::WriteOutcome::kPublished);
    }
    *outcome = WriteOutcome::kPublished;
    co_return Status::ok();
  }
  // Dropped: the server is shutting down and will never consume this
  // block, so the pusher must release it or it leaks until shutdown.
  buffer_->deallocate(block);
  const Status cause =
      resource_busy("write of '" + names_.at(name_id) +
                    "' dropped: server queue already closed");
  co_return degraded_write(client, name_id, iteration, data,
                           degrade_->on_pressure(), cause, outcome);
}

des::Task<Status> DamarisNode::write_task(int client, std::uint32_t name_id,
                                          std::int64_t iteration,
                                          std::span<const std::byte> data,
                                          WriteOutcome* outcome) {
  Result<shm::Block> block = co_await ingest_stage(client, iteration,
                                                   data.size());
  if (!block.is_ok()) {
    if (block.status().code() != ErrorCode::kOutOfMemory) {
      *outcome = WriteOutcome::kFailed;
      co_return block.status();
    }
    co_return degraded_write(client, name_id, iteration, data,
                             degrade_->on_pressure(), block.status(), outcome);
  }
  co_return co_await publish_stage(client, name_id, iteration, data,
                                   block.value(), outcome);
}

Status DamarisNode::client_write(int client, std::uint32_t name_id,
                                 std::int64_t iteration,
                                 std::span<const std::byte> data,
                                 WriteOutcome* outcome) {
  return run_task(write_task(client, name_id, iteration, data, outcome));
}

Status DamarisNode::publish_block(int client, std::uint32_t name_id,
                                  std::int64_t iteration, shm::Block block,
                                  WriteOutcome* outcome) {
  // dc_commit publishes an in-place write: the client's last chance to
  // have touched the payload.
  buffer_->note_write(block);
  shm::Message msg;
  msg.type = shm::MessageType::kWriteNotification;
  msg.client_id = client;
  msg.iteration = iteration;
  msg.name_id = name_id;
  msg.block = block;
  if (!shards_[shard_of(client)]->queue.push(msg)) {
    // Same leak hazard as the write path: a dropped notification leaves
    // the committed block live forever unless we release it here.
    buffer_->deallocate(block);
    *outcome = WriteOutcome::kFailed;
    return resource_busy("commit of '" + names_.at(name_id) +
                         "' dropped: server queue already closed");
  }
  *outcome = WriteOutcome::kPublished;
  return Status::ok();
}

Status DamarisNode::degraded_write(int client, std::uint32_t name_id,
                                   std::int64_t iteration,
                                   std::span<const std::byte> data,
                                   fault::DegradeMode mode,
                                   const Status& cause, WriteOutcome* outcome) {
  const auto drop = [&]() -> Status {
    trace_fault(opts_.node_id, "write-dropped", iteration);
    if (opts_.fault_checker != nullptr) {
      opts_.fault_checker->note_write(client, iteration,
                                      check::WriteOutcome::kDropped);
    }
    *outcome = WriteOutcome::kDropped;
    MutexLock lock(stats_mutex_);
    ++client_stats_[client].dropped_writes;
    client_stats_[client].dropped_bytes += data.size();
    return Status::ok();
  };

  if (mode == fault::DegradeMode::kDrop && resilience_.degrade.allow_drop) {
    return drop();
  }
  if (resilience_.degrade.allow_sync) {
    Status st = sync_write(client, name_id, iteration, data);
    if (st.is_ok()) {
      if (opts_.fault_checker != nullptr) {
        opts_.fault_checker->note_write(client, iteration,
                                        check::WriteOutcome::kSyncWritten);
      }
      *outcome = WriteOutcome::kSyncFallback;
      MutexLock lock(stats_mutex_);
      ++client_stats_[client].sync_writes;
      return Status::ok();
    }
    if (resilience_.degrade.allow_drop) return drop();
    *outcome = WriteOutcome::kFailed;
    return st;
  }
  if (resilience_.degrade.allow_drop) return drop();
  // No fallback allowed: the historical behaviour — surface the cause.
  if (opts_.fault_checker != nullptr) {
    opts_.fault_checker->note_write(client, iteration,
                                    check::WriteOutcome::kFailed);
  }
  *outcome = WriteOutcome::kFailed;
  return cause;
}

Status DamarisNode::sync_write(int client, std::uint32_t name_id,
                               std::int64_t iteration,
                               std::span<const std::byte> data) {
  const std::string& variable = names_.at(name_id);
  std::error_code ec;
  std::filesystem::create_directories(opts_.output_dir, ec);
  if (ec) return io_error("cannot create " + opts_.output_dir);

  // One standalone file per degraded write — the per-process small-file
  // pattern the dedicated core normally avoids (that cost is the point).
  const std::uint64_t seq =
      sync_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::string path =
      opts_.output_dir + "/" + opts_.file_prefix + "_node" +
      std::to_string(opts_.node_id) + "_sync_c" + std::to_string(client) +
      "_it" + std::to_string(iteration) + "_" + std::to_string(seq) + ".dh5";
  auto writer = format::Dh5Writer::create(path);
  if (!writer.is_ok()) return writer.status();

  format::DatasetInfo info;
  info.name = variable;
  info.iteration = iteration;
  info.source = client;
  if (const format::Layout* l = cfg_.layout_of(variable)) info.layout = *l;

  const iopath::CompressionModel model = compression_model_for(cfg_, variable);
  format::EncodedBuffer encoded = model.codec_pipeline().encode(data);
  Status st = writer.value().add_encoded(info, encoded, data.size());
  if (!st.is_ok()) return st;
  st = writer.value().finalize();
  if (!st.is_ok()) return st;

  trace_fault(opts_.node_id, "sync-write", iteration);
  MutexLock lock(stats_mutex_);
  ++server_stats_.sync_files;
  server_stats_.sync_bytes += data.size();
  return Status::ok();
}

Result<std::span<std::byte>> Client::alloc(const std::string& variable,
                                           std::int64_t iteration) {
  const format::Layout* layout = node_->cfg_.layout_of(variable);
  if (!layout) return not_found("variable '" + variable + "' not configured");
  const std::uint32_t id = node_->name_id(variable);
  auto block = node_->blocking_allocate(layout->byte_size(), id_);
  if (!block.is_ok()) return block.status();
  {
    MutexLock lock(node_->pending_mutex_);
    node_->pending_allocs_[{id_, id, iteration}] = block.value();
  }
  return std::span<std::byte>(node_->buffer_->data(block.value()),
                              block.value().size);
}

Status Client::commit(const std::string& variable, std::int64_t iteration) {
  const std::uint32_t id = node_->name_id(variable);
  if (id == ~0u) return not_found("variable '" + variable + "' unknown");
  shm::Block block;
  {
    MutexLock lock(node_->pending_mutex_);
    auto it = node_->pending_allocs_.find({id_, id, iteration});
    if (it == node_->pending_allocs_.end()) {
      return failed_precondition("no pending alloc for '" + variable + "'");
    }
    block = it->second;
    node_->pending_allocs_.erase(it);
  }
  // Publish through the async path so commits order with this client's
  // pending async writes (submit + wait, like write_sized).
  return node_->submit_publish(id_, id, iteration, block).wait();
}

Status Client::signal(const std::string& event, std::int64_t iteration) {
  const std::uint32_t id = node_->name_id(event);
  if (id == ~0u) return not_found("event '" + event + "' unknown");
  if (!node_->cfg_.find_event(event)) {
    return not_found("event '" + event + "' not configured");
  }
  shm::Message msg;
  msg.type = shm::MessageType::kUserEvent;
  msg.client_id = id_;
  msg.iteration = iteration;
  msg.name_id = id;
  if (!node_->shards_[node_->shard_of(id_)]->queue.push(msg)) {
    return resource_busy("signal '" + event +
                         "' dropped: server queue already closed");
  }
  return Status::ok();
}

Status Client::end_iteration(std::int64_t iteration) {
  // Fence: an iteration must not complete under this client's pending
  // async writes (preserves the blocking API's ordering guarantees).
  node_->drain_async(id_);
  shm::Message msg;
  msg.type = shm::MessageType::kUserEvent;
  msg.client_id = id_;
  msg.iteration = iteration;
  msg.name_id = node_->name_id("..end_iteration");
  if (!node_->shards_[node_->shard_of(id_)]->queue.push(msg)) {
    return resource_busy("end_iteration dropped: server queue already closed");
  }
  return Status::ok();
}

Status Client::finalize() {
  node_->drain_async(id_);
  shm::Message msg;
  msg.type = shm::MessageType::kClientFinalize;
  msg.client_id = id_;
  // A drop means the queue is already closed — the server is gone,
  // which is the state finalize exists to reach.
  (void)node_->shards_[node_->shard_of(id_)]->queue.push(msg);
  return Status::ok();
}

ClientStats Client::stats() const { return node_->client_stats(id_); }

}  // namespace dmr::core

// Micro-benchmarks of the shared-memory substrate: the two reservation
// algorithms of §III-B and the client->server event queue. The paper's
// design premise is that a Damaris write costs one memcpy plus a queue
// push — these benches quantify that overhead.
#include <benchmark/benchmark.h>

#include <cstring>
#include <thread>
#include <vector>

#include "shm/event_queue.hpp"
#include "shm/shared_buffer.hpp"

namespace {

using namespace dmr;
using namespace dmr::shm;

void BM_FirstFitAllocFree(benchmark::State& state) {
  SharedBuffer buf(64 * MiB, AllocPolicy::kMutexFirstFit, 1);
  const Bytes size = state.range(0);
  for (auto _ : state) {
    auto b = buf.allocate(size, 0);
    benchmark::DoNotOptimize(b);
    buf.deallocate(b.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirstFitAllocFree)->Arg(4 * KiB)->Arg(1 * MiB);

void BM_PartitionedAllocFree(benchmark::State& state) {
  SharedBuffer buf(64 * MiB, AllocPolicy::kPartitioned, 1);
  const Bytes size = state.range(0);
  for (auto _ : state) {
    auto b = buf.allocate(size, 0);
    benchmark::DoNotOptimize(b);
    buf.deallocate(b.value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionedAllocFree)->Arg(4 * KiB)->Arg(1 * MiB);

void BM_DamarisWritePath(benchmark::State& state) {
  // One full client-side "df_write": allocate, memcpy, notify.
  SharedBuffer buf(256 * MiB, AllocPolicy::kPartitioned, 1);
  EventQueue queue;
  const Bytes size = state.range(0);
  std::vector<std::byte> payload(size, std::byte{0x5A});
  for (auto _ : state) {
    auto b = buf.allocate(size, 0);
    std::memcpy(buf.data(b.value()), payload.data(), size);
    Message m;
    m.type = MessageType::kWriteNotification;
    m.block = b.value();
    (void)queue.push(m);  // queue never closed in this benchmark
    // Server side (drained inline to keep the buffer bounded).
    auto got = queue.try_pop();
    buf.deallocate(got->block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DamarisWritePath)->Arg(64 * KiB)->Arg(1 * MiB)->Arg(24 * MiB);

void BM_EventQueueThroughput(benchmark::State& state) {
  EventQueue queue;
  Message m;
  m.type = MessageType::kUserEvent;
  for (auto _ : state) {
    (void)queue.push(m);  // queue never closed in this benchmark
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueThroughput);

void BM_FirstFitContended(benchmark::State& state) {
  // Multi-threaded contention on the mutex allocator (the reason the
  // paper added the lock-free partitioned variant).
  static SharedBuffer* buf = nullptr;
  if (state.thread_index() == 0) {
    buf = new SharedBuffer(256 * MiB, AllocPolicy::kMutexFirstFit,
                           state.threads());
  }
  for (auto _ : state) {
    auto b = buf->allocate(64 * KiB, state.thread_index());
    if (b.is_ok()) buf->deallocate(b.value());
  }
  if (state.thread_index() == 0) {
    delete buf;
    buf = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FirstFitContended)->Threads(1)->Threads(4);

}  // namespace

BENCHMARK_MAIN();

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dmr {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ ? mean_ : 0.0; }

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return count_ ? min_ : 0.0; }

double Accumulator::max() const { return count_ ? max_ : 0.0; }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Sample::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

const std::vector<double>& Sample::sorted() const {
  if (!sorted_valid_ || sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size() - 1));
}

double Sample::min() const { return values_.empty() ? 0.0 : sorted().front(); }

double Sample::max() const { return values_.empty() ? 0.0 : sorted().back(); }

double Sample::percentile(double p) const {
  const auto& v = sorted();
  if (v.empty()) return 0.0;
  if (v.size() == 1) return v[0];
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

std::string describe(const Sample& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g sd=%.4g min=%.4g p50=%.4g max=%.4g",
                s.count(), s.mean(), s.stddev(), s.min(), s.median(),
                s.max());
  return buf;
}

}  // namespace dmr

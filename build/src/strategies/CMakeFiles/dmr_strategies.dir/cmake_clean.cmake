file(REMOVE_RECURSE
  "CMakeFiles/dmr_strategies.dir/strategy.cpp.o"
  "CMakeFiles/dmr_strategies.dir/strategy.cpp.o.d"
  "libdmr_strategies.a"
  "libdmr_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// C-style client API matching the paper's §III-D function set:
//
//   df_initialize / df_finalize
//   df_write("varname", step, data)
//   df_signal("eventname", step)
//   dc_alloc / dc_commit
//
// The original runs clients as separate processes; here a "node" is set
// up once with df_setup() and each client thread attaches with
// df_initialize(client_id). All functions return 0 on success and a
// negative errno-style value on failure (the message is retrievable via
// df_last_error()).
#pragma once

#include <cstdint>

namespace dmr::core::capi {

/// Creates the per-node Damaris instance from an XML configuration file
/// and starts the dedicated core. Call once per process.
int df_setup(const char* configuration_path, int num_clients,
             const char* output_dir);

/// Tears the node down (joins the dedicated core thread).
int df_teardown();

/// Attaches the calling thread as client `client_id`.
int df_initialize(int client_id);

/// Detaches and finalizes the calling client.
int df_finalize();

/// Copies `data` (size from the configured layout) into shared memory.
int df_write(const char* variable, std::int64_t step, const void* data);

/// Asynchronous df_write: submits the copy and returns a positive
/// ticket handle immediately (negative on failure). The calling client
/// keeps computing; pass the handle to df_wait / df_test, or call
/// df_wait_all before df_end_iteration. Handles are per-thread.
std::int64_t df_write_async(const char* variable, std::int64_t step,
                            const void* data);

/// Blocks until the ticket completes; returns its final status (0 ok)
/// and releases the handle.
int df_wait(std::int64_t ticket);

/// Non-blocking poll: 1 when done, 0 while pending, negative for an
/// unknown handle. Does not release the handle.
int df_test(std::int64_t ticket);

/// Waits for every outstanding async ticket of the calling thread;
/// returns the first failure (0 when all succeeded). Releases them.
int df_wait_all();

/// Sends a user event.
int df_signal(const char* event, std::int64_t step);

/// Marks the end of the calling client's iteration `step`.
int df_end_iteration(std::int64_t step);

/// Zero-copy path: returns a pointer to the variable's reserved block
/// (nullptr on failure); publish with dc_commit.
void* dc_alloc(const char* variable, std::int64_t step);
int dc_commit(const char* variable, std::int64_t step);

/// Last error message for the calling thread ("" if none).
const char* df_last_error();

}  // namespace dmr::core::capi

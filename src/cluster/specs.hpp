// Plain-data hardware and behaviour specifications for the simulated
// platforms. These are the knobs the platform presets (presets.hpp)
// calibrate to approximate Kraken, Grid'5000 and BluePrint.
#pragma once

#include <string>

#include "common/units.hpp"

namespace dmr::cluster {

/// One multicore SMP node.
struct NodeSpec {
  int cores = 12;                      // cores per node
  Bytes memory = 16 * GiB;             // local memory
  double nic_bandwidth = 2.0 * GiB;    // node injection bandwidth, B/s
  SimTime nic_latency = 5e-6;          // per-transfer latency, s
  double shm_bandwidth = 3.0 * GiB;    // single-core memcpy bandwidth, B/s
};

/// Sources of run-time variability (paper §II-A: causes 1–4).
struct NoiseSpec {
  /// OS / scheduling noise on compute phases: multiplicative lognormal
  /// with sigma = `os_noise_sigma` (mean-one). 0 disables.
  double os_noise_sigma = 0.005;

  /// Cross-application interference on storage operations: with
  /// probability `interference_prob`, an op's service time is multiplied
  /// by a Pareto(xm=interference_xm, alpha=interference_alpha) factor.
  double interference_prob = 0.0;
  double interference_xm = 1.5;
  double interference_alpha = 2.0;

  /// Correlated interference bursts: other jobs sharing the file system
  /// hammer a server for seconds at a time (paper §II-A cause 4 — the
  /// source of phase-to-phase unpredictability). Each server toggles
  /// independently between OFF (exponential mean `burst_off_mean`) and
  /// ON (mean `burst_on_mean`); while ON its service times are
  /// multiplied by `burst_slowdown`. 0 slowdown disables bursts.
  double burst_slowdown = 0.0;
  SimTime burst_on_mean = 4.0;
  SimTime burst_off_mean = 40.0;

  /// Rare machine-wide storms: a large foreign job occasionally saturates
  /// the whole file system for minutes (all servers at once). These are
  /// what make one write phase in ten pathologically slow (the paper's
  /// 481 s average vs ~800 s maximum for collective I/O). 0 disables.
  double storm_slowdown = 0.0;
  SimTime storm_on_mean = 60.0;
  SimTime storm_off_mean = 2000.0;

  /// Variability of the shared-memory copy itself (memory-bus traffic,
  /// allocator contention): an exponential extra delay with this mean is
  /// added to each client's copy. This is the paper's ~0.1 s jitter on
  /// the 0.2 s Damaris write. 0 disables.
  SimTime shm_jitter_mean = 0.0;
};

/// Metadata handling style of the simulated parallel file system.
enum class MetadataModel {
  kSerializedSingleServer,  // Lustre-like: one MDS, creates serialize
  kDistributed,             // PVFS-like: metadata spread over servers
  kSharedDisk,              // GPFS-like: distributed, lock-based
  kSharded,                 // hash-partitioned namespace shards with
                            // replicated read service (ViPIOS-style)
};

/// Parallel file system deployment.
struct FsSpec {
  int data_servers = 48;              // OSTs / I/O servers
  double server_bandwidth = 400.0 * MiB;  // per-server service rate, B/s
  SimTime per_op_overhead = 1e-3;     // fixed cost per storage request, s
  SimTime stream_switch_cost = 10e-3; // extra cost when a server switches
                                      // between write streams (head thrash /
                                      // cache eviction between files)
  Bytes stripe_size = 1 * MiB;        // striping unit
  int default_stripe_count = 4;       // servers per file unless overridden
  MetadataModel metadata = MetadataModel::kSerializedSingleServer;
  /// MetadataModel::kSharded only: number of hash-partitioned namespace
  /// shards (each a serial queue like the single MDS) and the replica
  /// count per shard. Replica 1 is the primary; additional replicas
  /// serve read traffic (open/close round-robin) while mutations go to
  /// the primary and are applied asynchronously to the replicas.
  int mds_shards = 8;
  int mds_replicas = 1;
  SimTime metadata_create_cost = 1.5e-3;  // per file-create, s
  SimTime metadata_open_cost = 0.3e-3;    // per open of existing file, s
  /// Byte-range/extent lock costs for shared-file writes.
  SimTime lock_acquire_cost = 1e-3;
  SimTime lock_revoke_cost = 15e-3;   // paid when the lock moves between
                                      // clients (cache flush + grant)
  /// Service-time multiplier for writes into a *shared* file: interleaved
  /// writers false-share file blocks, forcing read-modify-write cycles
  /// and lock-induced cache flushes at the servers. 1.0 disables (PVFS,
  /// which has no byte-range locks, does not exhibit it).
  double shared_write_penalty = 1.0;
  double storage_network_bandwidth = 12.0 * GiB;  // aggregate path from the
                                      // compute fabric to the FS, B/s
  /// Per-client serial streaming ceiling (HDF5 formatting + POSIX write
  /// path is single-threaded on one core): even a lone writer cannot
  /// push faster than this. 0 disables the cap.
  double client_stream_rate = 0.0;
  /// Total usable file-system capacity. Writes that would exceed it
  /// fail with kNoSpace (ENOSPC). 0 means unbounded (the default; real
  /// deployments only hit this when a foreign job fills the scratch
  /// space, which is what the fault plans model).
  Bytes capacity = 0;
};

/// Interconnect between nodes (used by collective aggregation).
struct FabricSpec {
  double bisection_bandwidth = 100.0 * GiB;  // aggregate all-to-all, B/s
  SimTime latency = 2e-6;
  /// Effective per-rank bandwidth during dense all-to-all exchange, as a
  /// fraction of nic_bandwidth (congestion factor < 1).
  double alltoall_efficiency = 0.7;
};

/// A complete simulated platform.
struct PlatformSpec {
  std::string name;
  NodeSpec node;
  NoiseSpec noise;
  FsSpec fs;
  FabricSpec fabric;
};

}  // namespace dmr::cluster

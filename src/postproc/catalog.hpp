// Post-processing of Damaris output (the consumer side of §I's
// motivation: "reading such a huge number of files for post-processing
// and visualization becomes intractable" — the per-node gathered files
// keep this tractable).
//
// A Catalog scans a directory of DH5 files and indexes every dataset by
// its ⟨name, iteration, source⟩ tuple, regardless of how the datasets
// are spread over files (one file per process, per node, or per
// dedicated core). assemble_field() then reconstructs the global 3-D
// array of one variable at one iteration from the per-source subdomain
// blocks of a CM1-style px × py domain decomposition.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "format/dh5.hpp"

namespace dmr::postproc {

class Catalog {
 public:
  struct Entry {
    std::string file;
    std::size_t dataset_index = 0;  // within the file
    format::DatasetInfo info;
    std::uint64_t raw_size = 0;
    std::uint64_t stored_size = 0;
    bool compressed = false;
  };

  /// Scans `dir` (non-recursively) for *.dh5 files and indexes their
  /// datasets. Unreadable files fail the scan — an output directory with
  /// a corrupt file should be noticed, not silently skipped.
  static Result<Catalog> scan(const std::string& dir);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t num_files() const { return files_; }

  /// Distinct variable names, sorted.
  std::vector<std::string> variables() const;
  /// Distinct iterations, sorted ascending.
  std::vector<std::int64_t> iterations() const;

  /// All blocks of one variable at one iteration (one per source),
  /// sorted by source.
  std::vector<const Entry*> find(const std::string& variable,
                                 std::int64_t iteration) const;

  /// Reads and decodes one entry's payload.
  Result<std::vector<std::byte>> read(const Entry& entry) const;

  /// Total raw vs stored bytes across the catalog (compression summary).
  std::uint64_t total_raw_bytes() const;
  std::uint64_t total_stored_bytes() const;

 private:
  std::vector<Entry> entries_;
  std::size_t files_ = 0;
};

/// A reassembled global field, k-fastest layout (matches
/// Cm1Solver::pack_field).
struct AssembledField {
  std::uint64_t nx = 0, ny = 0, nz = 0;
  std::vector<float> data;  // size nx*ny*nz, index (i*ny + j)*nz + k

  float at(std::uint64_t i, std::uint64_t j, std::uint64_t k) const {
    return data[(i * ny + j) * nz + k];
  }
  float min() const;
  float max() const;
  double mean() const;
};

/// Reassembles variable `name` at `iteration` from per-source subdomain
/// blocks laid out on a px × py process grid (source = cy * px + cx,
/// each block's layout = {lx, ly, lz}, float32). Fails if sources are
/// missing, duplicated, shaped inconsistently or not float32.
Result<AssembledField> assemble_field(const Catalog& catalog,
                                      const std::string& name,
                                      std::int64_t iteration, int px,
                                      int py);

}  // namespace dmr::postproc

file(REMOVE_RECURSE
  "CMakeFiles/particles.dir/particles.cpp.o"
  "CMakeFiles/particles.dir/particles.cpp.o.d"
  "particles"
  "particles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

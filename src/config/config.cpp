#include "config/config.hpp"

#include <cstdlib>

namespace dmr::config {

namespace {

/// Parses "64,16,2" into dims; rejects empties and non-numbers.
Status parse_dimensions(const std::string& s,
                        std::vector<std::uint64_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    const std::string token = s.substr(pos, end - pos);
    if (token.empty()) return invalid_argument("empty dimension in '" + s + "'");
    char* endp = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &endp, 10);
    if (endp == token.c_str() || *endp != '\0' || v == 0) {
      return invalid_argument("bad dimension '" + token + "'");
    }
    out.push_back(v);
    pos = end + 1;
  }
  if (out.empty()) return invalid_argument("no dimensions in '" + s + "'");
  return Status::ok();
}

/// Strict decimal parse ("0.25", "5", "1e-3"); rejects trailing junk.
Status parse_double(const std::string& s, const std::string& what,
                    double& out) {
  char* endp = nullptr;
  const double v = std::strtod(s.c_str(), &endp);
  if (endp == s.c_str() || *endp != '\0') {
    return invalid_argument("bad " + what + " '" + s + "'");
  }
  out = v;
  return Status::ok();
}

Status parse_int(const std::string& s, const std::string& what, int& out) {
  char* endp = nullptr;
  const long v = std::strtol(s.c_str(), &endp, 10);
  if (endp == s.c_str() || *endp != '\0') {
    return invalid_argument("bad " + what + " '" + s + "'");
  }
  out = static_cast<int>(v);
  return Status::ok();
}

Status parse_bool(const std::string& s, const std::string& what, bool& out) {
  if (s == "true" || s == "1") {
    out = true;
  } else if (s == "false" || s == "0") {
    out = false;
  } else {
    return invalid_argument("bad " + what + " '" + s +
                            "' (expected true/false)");
  }
  return Status::ok();
}

}  // namespace

const LayoutDecl* Config::find_layout(const std::string& name) const {
  auto it = layouts_.find(name);
  return it == layouts_.end() ? nullptr : &it->second;
}

const VariableDecl* Config::find_variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? nullptr : &it->second;
}

const EventDecl* Config::find_event(const std::string& name) const {
  auto it = events_.find(name);
  return it == events_.end() ? nullptr : &it->second;
}

const format::Layout* Config::layout_of(const std::string& variable) const {
  const VariableDecl* v = find_variable(variable);
  if (!v) return nullptr;
  const LayoutDecl* l = find_layout(v->layout_name);
  return l ? &l->layout : nullptr;
}

Result<Config> Config::from_string(const std::string& xml) {
  auto doc = parse_xml(xml);
  if (!doc.is_ok()) return doc.status();
  return from_xml(doc.value());
}

Result<Config> Config::from_file(const std::string& path) {
  auto doc = parse_xml_file(path);
  if (!doc.is_ok()) return doc.status();
  return from_xml(doc.value());
}

Result<Config> Config::from_xml(const XmlNode& root) {
  if (root.name != "damaris") {
    return invalid_argument("root element must be <damaris>, got <" +
                            root.name + ">");
  }
  Config cfg;

  if (const XmlNode* buf = root.child("buffer")) {
    if (const std::string* size = buf->attr("size")) {
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(size->c_str(), &endp, 10);
      if (endp == size->c_str() || *endp != '\0' || v == 0) {
        return invalid_argument("bad buffer size '" + *size + "'");
      }
      cfg.buffer_size_ = v;
    }
    const std::string policy = buf->attr_or("policy", "firstfit");
    if (policy != "firstfit" && policy != "partitioned") {
      return invalid_argument("unknown buffer policy '" + policy + "'");
    }
    cfg.buffer_policy_ = policy;
  }

  if (const XmlNode* ded = root.child("dedicated")) {
    const std::string cores = ded->attr_or("cores", "1");
    const int v = std::atoi(cores.c_str());
    if (v < 1) return invalid_argument("dedicated cores must be >= 1");
    cfg.dedicated_cores_ = v;
  }

  for (const XmlNode* n : root.children_named("layout")) {
    LayoutDecl decl;
    const std::string* name = n->attr("name");
    if (!name) return invalid_argument("<layout> without name");
    decl.name = *name;
    const std::string type = n->attr_or("type", "float32");
    if (!format::parse_datatype(type, decl.layout.type)) {
      return invalid_argument("layout '" + decl.name + "': unknown type '" +
                              type + "'");
    }
    const std::string* dims = n->attr("dimensions");
    if (!dims) {
      return invalid_argument("layout '" + decl.name + "' needs dimensions");
    }
    Status s = parse_dimensions(*dims, decl.layout.dims);
    if (!s.is_ok()) return s;
    decl.fortran_order = n->attr_or("language", "") == "fortran";
    if (!cfg.layouts_.emplace(decl.name, decl).second) {
      return invalid_argument("duplicate layout '" + decl.name + "'");
    }
  }

  for (const XmlNode* n : root.children_named("variable")) {
    VariableDecl decl;
    const std::string* name = n->attr("name");
    if (!name) return invalid_argument("<variable> without name");
    decl.name = *name;
    const std::string* layout = n->attr("layout");
    if (!layout) {
      return invalid_argument("variable '" + decl.name + "' needs a layout");
    }
    decl.layout_name = *layout;
    decl.pipeline = n->attr_or("pipeline", "");
    if (!decl.pipeline.empty() && decl.pipeline != "lossless" &&
        decl.pipeline != "visualization") {
      return invalid_argument("variable '" + decl.name +
                              "': unknown pipeline '" + decl.pipeline + "'");
    }
    if (!cfg.variables_.emplace(decl.name, decl).second) {
      return invalid_argument("duplicate variable '" + decl.name + "'");
    }
  }

  for (const XmlNode* n : root.children_named("event")) {
    EventDecl decl;
    const std::string* name = n->attr("name");
    if (!name) return invalid_argument("<event> without name");
    decl.name = *name;
    decl.action = n->attr_or("action", "");
    if (decl.action.empty()) {
      return invalid_argument("event '" + decl.name + "' needs an action");
    }
    decl.plugin = n->attr_or("using", "");
    decl.scope = n->attr_or("scope", "local");
    if (decl.scope != "local" && decl.scope != "global") {
      return invalid_argument("event '" + decl.name + "': unknown scope '" +
                              decl.scope + "'");
    }
    if (!cfg.events_.emplace(decl.name, decl).second) {
      return invalid_argument("duplicate event '" + decl.name + "'");
    }
  }

  for (const XmlNode* n : root.children_named("parameter")) {
    ParameterDecl decl;
    const std::string* name = n->attr("name");
    if (!name) return invalid_argument("<parameter> without name");
    decl.name = *name;
    decl.value = n->attr_or("value", "");
    if (decl.value.empty()) {
      return invalid_argument("parameter '" + decl.name +
                              "' needs a value");
    }
    if (!cfg.parameters_.emplace(decl.name, decl).second) {
      return invalid_argument("duplicate parameter '" + decl.name + "'");
    }
  }

  // <fault seed="42"><inject site="storage.write" rate="0.25" at="5"
  // for="2" stall="0.01" factor="4"/></fault> — a seeded, reproducible
  // fault schedule. Malformed rules (unknown sites, negative rates,
  // windows without length) are rejected here, not at injection time.
  if (const XmlNode* fault = root.child("fault")) {
    if (const std::string* seed = fault->attr("seed")) {
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(seed->c_str(), &endp, 10);
      if (endp == seed->c_str() || *endp != '\0' || v == 0) {
        return invalid_argument("bad fault seed '" + *seed + "'");
      }
      cfg.fault_plan_.seed = v;
    }
    for (const XmlNode* n : fault->children_named("inject")) {
      fault::FaultSpec spec;
      const std::string* site = n->attr("site");
      if (!site) return invalid_argument("<inject> without site");
      if (!fault::parse_site(*site, spec.site)) {
        return invalid_argument("unknown fault site '" + *site + "'");
      }
      Status s = Status::ok();
      if (const std::string* a = n->attr("rate")) {
        s = parse_double(*a, "fault rate", spec.rate);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = n->attr("at")) {
        s = parse_double(*a, "fault window start", spec.window_start);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = n->attr("for")) {
        s = parse_double(*a, "fault window length", spec.window_length);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = n->attr("stall")) {
        s = parse_double(*a, "fault stall", spec.stall_seconds);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = n->attr("factor")) {
        s = parse_double(*a, "fault factor", spec.factor);
        if (!s.is_ok()) return s;
      }
      cfg.fault_plan_.faults.push_back(spec);
    }
    if (Status s = cfg.fault_plan_.validate(); !s.is_ok()) return s;
  }

  // <resilience><retry attempts=".."/><degrade sync="true"/></resilience>
  if (const XmlNode* res = root.child("resilience")) {
    if (const XmlNode* retry = res->child("retry")) {
      fault::RetryPolicy& p = cfg.resilience_.retry;
      Status s = Status::ok();
      if (const std::string* a = retry->attr("attempts")) {
        s = parse_int(*a, "retry attempts", p.max_attempts);
        if (!s.is_ok()) return s;
        if (p.max_attempts < 1) {
          return invalid_argument("retry attempts must be >= 1");
        }
      }
      if (const std::string* a = retry->attr("base_delay")) {
        s = parse_double(*a, "retry base_delay", p.base_delay);
        if (!s.is_ok()) return s;
        if (p.base_delay <= 0.0) {
          return invalid_argument("retry base_delay must be > 0");
        }
      }
      if (const std::string* a = retry->attr("max_delay")) {
        s = parse_double(*a, "retry max_delay", p.max_delay);
        if (!s.is_ok()) return s;
        if (p.max_delay < p.base_delay) {
          return invalid_argument("retry max_delay must be >= base_delay");
        }
      }
      if (const std::string* a = retry->attr("deadline")) {
        s = parse_double(*a, "retry deadline", p.deadline);
        if (!s.is_ok()) return s;
        if (p.deadline < 0.0) {
          return invalid_argument("retry deadline must be >= 0");
        }
      }
    }
    if (const XmlNode* deg = res->child("degrade")) {
      fault::DegradePolicy& p = cfg.resilience_.degrade;
      Status s = Status::ok();
      if (const std::string* a = deg->attr("block_timeout_ms")) {
        s = parse_int(*a, "degrade block_timeout_ms", p.block_timeout_ms);
        if (!s.is_ok()) return s;
        if (p.block_timeout_ms < -1) {
          return invalid_argument(
              "degrade block_timeout_ms must be >= -1");
        }
      }
      if (const std::string* a = deg->attr("sync")) {
        s = parse_bool(*a, "degrade sync", p.allow_sync);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = deg->attr("drop")) {
        s = parse_bool(*a, "degrade drop", p.allow_drop);
        if (!s.is_ok()) return s;
      }
      if (const std::string* a = deg->attr("trip")) {
        s = parse_int(*a, "degrade trip", p.trip_threshold);
        if (!s.is_ok()) return s;
        if (p.trip_threshold < 1) {
          return invalid_argument("degrade trip must be >= 1");
        }
      }
      if (const std::string* a = deg->attr("clear")) {
        s = parse_int(*a, "degrade clear", p.clear_threshold);
        if (!s.is_ok()) return s;
        if (p.clear_threshold < 1) {
          return invalid_argument("degrade clear must be >= 1");
        }
      }
    }
  }

  // <scheduling alpha="0.3" adaptive="false"/> — §IV-D write-scheduling
  // knobs. alpha is validated here, not clamped: a config asking for an
  // out-of-range smoothing factor is a mistake worth surfacing.
  if (const XmlNode* sch = root.child("scheduling")) {
    Status s = Status::ok();
    if (const std::string* a = sch->attr("alpha")) {
      s = parse_double(*a, "scheduling alpha", cfg.scheduling_.alpha);
      if (!s.is_ok()) return s;
      if (!(cfg.scheduling_.alpha > 0.0) || cfg.scheduling_.alpha > 1.0) {
        return invalid_argument("scheduling alpha must be in (0, 1], got '" +
                                *a + "'");
      }
    }
    if (const std::string* a = sch->attr("adaptive")) {
      s = parse_bool(*a, "scheduling adaptive", cfg.scheduling_.adaptive);
      if (!s.is_ok()) return s;
    }
  }

  // <plugins budget_ms="5" on_error="disable">
  //   <plugin name="moments" type="statistics" variables="temperature"/>
  // </plugins> — the in-situ chain run by the dedicated core between
  // publish and persist (DESIGN.md §15). Malformed declarations are
  // rejected here so the node never starts with a half-valid chain.
  if (const XmlNode* plugins = root.child("plugins")) {
    PluginsConfig& pc = cfg.plugins_;
    Status s = Status::ok();
    if (const std::string* a = plugins->attr("budget_ms")) {
      s = parse_double(*a, "plugins budget_ms", pc.budget_ms);
      if (!s.is_ok()) return s;
      if (pc.budget_ms < 0.0) {
        return invalid_argument("plugins budget_ms must be >= 0");
      }
    }
    pc.on_error = plugins->attr_or("on_error", "warn");
    if (pc.on_error != "warn" && pc.on_error != "disable") {
      return invalid_argument("plugins on_error must be warn|disable, got '" +
                              pc.on_error + "'");
    }
    pc.on_overrun = plugins->attr_or("on_overrun", "warn");
    if (pc.on_overrun != "warn" && pc.on_overrun != "disable") {
      return invalid_argument(
          "plugins on_overrun must be warn|disable, got '" + pc.on_overrun +
          "'");
    }
    for (const XmlNode* n : plugins->children_named("plugin")) {
      PluginDecl decl;
      const std::string* name = n->attr("name");
      if (!name || name->empty()) {
        return invalid_argument("<plugin> without name");
      }
      decl.name = *name;
      decl.type = n->attr_or("type", "");
      if (decl.type.empty()) {
        return invalid_argument("plugin '" + decl.name + "' needs a type");
      }
      const std::string vars = n->attr_or("variables", "");
      if (!vars.empty() && vars.back() == ',') {
        return invalid_argument("plugin '" + decl.name +
                                "': empty variable in '" + vars + "'");
      }
      std::size_t pos = 0;
      while (pos < vars.size()) {
        std::size_t end = vars.find(',', pos);
        if (end == std::string::npos) end = vars.size();
        const std::string token = vars.substr(pos, end - pos);
        if (token.empty()) {
          return invalid_argument("plugin '" + decl.name +
                                  "': empty variable in '" + vars + "'");
        }
        decl.variables.push_back(token);
        pos = end + 1;
      }
      if (const std::string* a = n->attr("stride")) {
        s = parse_int(*a, "plugin stride", decl.stride);
        if (!s.is_ok()) return s;
        if (decl.stride < 1) {
          return invalid_argument("plugin '" + decl.name +
                                  "': stride must be >= 1");
        }
      }
      for (const PluginDecl& other : pc.plugins) {
        if (other.name == decl.name) {
          return invalid_argument("duplicate plugin '" + decl.name + "'");
        }
      }
      pc.plugins.push_back(std::move(decl));
    }
  }

  // <monitor enabled="true" socket="/tmp/dmr.sock" interval_ms="100"
  //  slo_p95_ms="50" slo_max_ms="200"/> — the live observability
  // endpoint (DESIGN.md §15).
  if (const XmlNode* mon = root.child("monitor")) {
    MonitorConfig& mc = cfg.monitor_;
    Status s = Status::ok();
    if (const std::string* a = mon->attr("enabled")) {
      s = parse_bool(*a, "monitor enabled", mc.enabled);
      if (!s.is_ok()) return s;
    }
    mc.socket = mon->attr_or("socket", "");
    if (const std::string* a = mon->attr("interval_ms")) {
      s = parse_int(*a, "monitor interval_ms", mc.interval_ms);
      if (!s.is_ok()) return s;
      if (mc.interval_ms < 1) {
        return invalid_argument("monitor interval_ms must be >= 1");
      }
    }
    if (const std::string* a = mon->attr("slo_p95_ms")) {
      s = parse_double(*a, "monitor slo_p95_ms", mc.slo_p95_ms);
      if (!s.is_ok()) return s;
      if (mc.slo_p95_ms < 0.0) {
        return invalid_argument("monitor slo_p95_ms must be >= 0");
      }
    }
    if (const std::string* a = mon->attr("slo_max_ms")) {
      s = parse_double(*a, "monitor slo_max_ms", mc.slo_max_ms);
      if (!s.is_ok()) return s;
      if (mc.slo_max_ms < 0.0) {
        return invalid_argument("monitor slo_max_ms must be >= 0");
      }
    }
    if (mc.enabled && mc.socket.empty()) {
      return invalid_argument("monitor enabled but no socket path given");
    }
  }

  // <facility nodes="16" seed="7">
  //   <mds model="sharded" shards="8" replicas="2"/>
  //   <placement policy="elastic" slo_p95_ms="500" trip="2" clear="3"
  //              staging_gib_s="8" group_servers="8"/>
  //   <tenants>
  //     <tenant id="1" name="cm1-a" arrival="0" nodes="4"
  //             strategy="damaris" iterations="8" slo_p95_ms="400"/>
  //   </tenants>
  // </facility> — the multi-tenant facility (DESIGN.md §17). Structural
  // mistakes (negative arrivals, duplicate ids, unknown policy or
  // strategy names, more replicas than shards) are rejected here.
  if (const XmlNode* fac = root.child("facility")) {
    FacilityConfig& fc = cfg.facility_;
    fc.declared = true;
    Status s = Status::ok();
    if (const std::string* a = fac->attr("nodes")) {
      s = parse_int(*a, "facility nodes", fc.nodes);
      if (!s.is_ok()) return s;
      if (fc.nodes < 1) {
        return invalid_argument("facility nodes must be >= 1");
      }
    }
    if (const std::string* a = fac->attr("seed")) {
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(a->c_str(), &endp, 10);
      if (endp == a->c_str() || *endp != '\0' || v == 0) {
        return invalid_argument("bad facility seed '" + *a + "'");
      }
      fc.seed = v;
    }
    if (const XmlNode* mds = fac->child("mds")) {
      fc.mds_model = mds->attr_or("model", "serialized");
      if (fc.mds_model != "serialized" && fc.mds_model != "sharded") {
        return invalid_argument(
            "facility mds model must be serialized|sharded, got '" +
            fc.mds_model + "'");
      }
      if (const std::string* a = mds->attr("shards")) {
        s = parse_int(*a, "mds shards", fc.mds_shards);
        if (!s.is_ok()) return s;
        if (fc.mds_shards < 1) {
          return invalid_argument("mds shards must be >= 1");
        }
      }
      if (const std::string* a = mds->attr("replicas")) {
        s = parse_int(*a, "mds replicas", fc.mds_replicas);
        if (!s.is_ok()) return s;
        if (fc.mds_replicas < 1) {
          return invalid_argument("mds replicas must be >= 1");
        }
      }
      if (fc.mds_replicas > fc.mds_shards) {
        return invalid_argument(
            "mds replicas (" + std::to_string(fc.mds_replicas) +
            ") must not exceed shards (" + std::to_string(fc.mds_shards) +
            ")");
      }
    }
    if (const XmlNode* place = fac->child("placement")) {
      FacilityPlacementDecl& pd = fc.placement;
      pd.policy = place->attr_or("policy", "static");
      if (pd.policy != "static" && pd.policy != "elastic") {
        return invalid_argument(
            "placement policy must be static|elastic, got '" + pd.policy +
            "'");
      }
      if (const std::string* a = place->attr("slo_p95_ms")) {
        s = parse_double(*a, "placement slo_p95_ms", pd.slo_p95_ms);
        if (!s.is_ok()) return s;
        if (pd.slo_p95_ms < 0.0) {
          return invalid_argument("placement slo_p95_ms must be >= 0");
        }
      }
      if (const std::string* a = place->attr("trip")) {
        s = parse_int(*a, "placement trip", pd.trip);
        if (!s.is_ok()) return s;
        if (pd.trip < 1) {
          return invalid_argument("placement trip must be >= 1");
        }
      }
      if (const std::string* a = place->attr("clear")) {
        s = parse_int(*a, "placement clear", pd.clear);
        if (!s.is_ok()) return s;
        if (pd.clear < 1) {
          return invalid_argument("placement clear must be >= 1");
        }
      }
      if (const std::string* a = place->attr("staging_gib_s")) {
        s = parse_double(*a, "placement staging_gib_s", pd.staging_gib_s);
        if (!s.is_ok()) return s;
        if (pd.staging_gib_s <= 0.0) {
          return invalid_argument("placement staging_gib_s must be > 0");
        }
      }
      if (const std::string* a = place->attr("group_servers")) {
        s = parse_int(*a, "placement group_servers", pd.group_servers);
        if (!s.is_ok()) return s;
        if (pd.group_servers < 1) {
          return invalid_argument("placement group_servers must be >= 1");
        }
      }
    }
    if (const XmlNode* tenants = fac->child("tenants")) {
      for (const XmlNode* n : tenants->children_named("tenant")) {
        FacilityTenantDecl decl;
        const std::string* id = n->attr("id");
        if (!id) return invalid_argument("<tenant> without id");
        s = parse_int(*id, "tenant id", decl.id);
        if (!s.is_ok()) return s;
        if (decl.id < 0) {
          return invalid_argument("tenant id must be >= 0");
        }
        const std::string who = "tenant " + std::to_string(decl.id);
        decl.name = n->attr_or("name", "tenant-" + std::to_string(decl.id));
        if (const std::string* a = n->attr("arrival")) {
          s = parse_double(*a, "tenant arrival", decl.arrival);
          if (!s.is_ok()) return s;
          if (decl.arrival < 0.0) {
            return invalid_argument(who + ": arrival must be >= 0");
          }
        }
        if (const std::string* a = n->attr("nodes")) {
          s = parse_int(*a, "tenant nodes", decl.nodes);
          if (!s.is_ok()) return s;
        }
        if (decl.nodes < 1) {
          return invalid_argument(who + ": nodes must be >= 1");
        }
        if (decl.nodes > fc.nodes) {
          return invalid_argument(
              who + " wants " + std::to_string(decl.nodes) +
              " nodes but the facility has " + std::to_string(fc.nodes));
        }
        decl.strategy = n->attr_or("strategy", "damaris");
        if (decl.strategy != "file-per-process" &&
            decl.strategy != "collective-io" && decl.strategy != "damaris" &&
            decl.strategy != "no-io") {
          return invalid_argument(who + ": unknown strategy '" +
                                  decl.strategy + "'");
        }
        if (const std::string* a = n->attr("iterations")) {
          s = parse_int(*a, "tenant iterations", decl.iterations);
          if (!s.is_ok()) return s;
          if (decl.iterations < 1) {
            return invalid_argument(who + ": iterations must be >= 1");
          }
        }
        if (const std::string* a = n->attr("slo_p95_ms")) {
          s = parse_double(*a, "tenant slo_p95_ms", decl.slo_p95_ms);
          if (!s.is_ok()) return s;
          if (decl.slo_p95_ms < 0.0) {
            return invalid_argument(who + ": slo_p95_ms must be >= 0");
          }
        }
        for (const FacilityTenantDecl& other : fc.tenants) {
          if (other.id == decl.id) {
            return invalid_argument("duplicate tenant id " +
                                    std::to_string(decl.id));
          }
        }
        fc.tenants.push_back(std::move(decl));
      }
    }
  }

  // Cross-reference validation: every variable's layout must exist.
  for (const auto& [vname, var] : cfg.variables_) {
    if (!cfg.find_layout(var.layout_name)) {
      return invalid_argument("variable '" + vname +
                              "' references unknown layout '" +
                              var.layout_name + "'");
    }
  }
  // ... and every plugin variable filter must name a declared variable.
  for (const PluginDecl& p : cfg.plugins_.plugins) {
    for (const std::string& v : p.variables) {
      if (!cfg.find_variable(v)) {
        return invalid_argument("plugin '" + p.name +
                                "' references unknown variable '" + v + "'");
      }
    }
  }
  return cfg;
}

}  // namespace dmr::config

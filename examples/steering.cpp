// Inline steering — the "S" of the Damaris acronym (Dedicated Adaptable
// Middleware for Application Resources Inline Steering).
//
// A monitoring loop (playing the "external tool" of §III-A) watches the
// analytics the dedicated core publishes and *steers the running
// simulation*: when the simulated storm's updraft crosses a threshold it
// raises the output frequency through a steerable parameter; the compute
// threads poll that parameter each iteration and adapt their output
// cadence without stopping.
//
// Build & run:  ./build/examples/steering
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "cm1/solver.hpp"
#include "config/config.hpp"
#include "core/damaris.hpp"

namespace {

const char* kConfigXml = R"(
<damaris>
  <buffer size="33554432" policy="partitioned"/>
  <layout name="sub" type="float32" dimensions="32,32,16"/>
  <variable name="w" layout="sub"/>
  <event name="analyze" action="stats" scope="global"/>
  <parameter name="output_interval" value="4"/>
</damaris>)";

}  // namespace

int main() {
  auto cfg = dmr::config::Config::from_string(kConfigXml);
  if (!cfg.is_ok()) {
    std::fprintf(stderr, "%s\n", cfg.status().to_string().c_str());
    return 1;
  }

  dmr::cm1::Cm1Config cm1_cfg;
  cm1_cfg.nx = 64;
  cm1_cfg.ny = 64;
  cm1_cfg.nz = 16;
  cm1_cfg.px = 2;
  cm1_cfg.py = 2;
  cm1_cfg.buoyancy = 0.08;

  dmr::core::NodeOptions opts;
  opts.output_dir = "steering_out";
  dmr::core::DamarisNode node(std::move(cfg.value()), 4, opts);
  if (auto s = node.start(); !s.is_ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  const int kSteps = 24;
  std::atomic<bool> done{false};
  std::atomic<int> outputs{0};

  // The steering loop: an external observer, not a client.
  std::thread steering([&] {
    bool escalated = false;
    while (!done.load()) {
      auto analytics = node.analytics();
      auto it = analytics.find("w.max");
      if (!escalated && it != analytics.end() && it->second > 0.5) {
        std::printf("[steering] updraft %.2f m/s — output every iteration "
                    "now\n",
                    it->second);
        (void)node.set_parameter("output_interval", "1");
        escalated = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  dmr::cm1::Cm1Solver solver(cm1_cfg);
  std::vector<std::thread> compute;
  std::vector<std::vector<float>> packs(4, std::vector<float>(32 * 32 * 16));
  for (int c = 0; c < 4; ++c) {
    compute.emplace_back([&, c] {
      auto client = node.client(c);
      for (int step = 0; step < kSteps; ++step) {
        solver.step(c);
        // Poll the steerable parameter: the cadence can change mid-run.
        const long long interval =
            node.parameter_int("output_interval").value_or(4);
        if (step % interval == 0) {
          solver.pack_field(c, 3 /*w*/, packs[c]);
          (void)client.write(
              "w", step, std::as_bytes(std::span<const float>(packs[c])));
          (void)client.signal("analyze", step);
          (void)client.end_iteration(step);
          if (c == 0) outputs.fetch_add(1);
        }
      }
      (void)client.finalize();
    });
  }
  for (auto& t : compute) t.join();
  done.store(true);
  steering.join();
  (void)node.stop();

  std::printf("steps: %d, output phases: %d (would be %d without "
              "steering)\n",
              kSteps, outputs.load(), kSteps / 4);
  std::printf("final output_interval = %s\n",
              node.parameter("output_interval").value_or("?").c_str());
  return 0;
}

// The concrete DES stages the simulated strategies compose. Each stage
// performs exactly the awaits the pre-pipeline monolith performed, so a
// composition replays the same event timeline as the inline code it
// replaced (pinned by tests/pipeline_equivalence_test.cpp).
//
// Thread-safety: DES-side only — every stage runs inside the single
// thread of its des::Engine; no internal synchronization needed or
// provided.
#pragma once

#include "cluster/machine.hpp"
#include "des/engine.hpp"
#include "des/sync.hpp"
#include "fault/retry.hpp"
#include "fs/sim_fs.hpp"
#include "iopath/compression_model.hpp"
#include "iopath/stage.hpp"
#include "simmpi/collective_io.hpp"

namespace dmr::sched {
class AdaptiveSlotController;
}

namespace dmr::iopath {

/// Ingest — one memcpy into the origin node's shared-memory segment,
/// contended with the node's other cores through the memory bus and
/// jittered by bus traffic (the paper's ~0.1 s on the 0.2 s write).
/// `traffic_factor` > 1 models the FUSE detour of §V-B, where every
/// byte crosses the kernel (~10x the bus traffic).
class ShmIngestStage : public Stage {
 public:
  ShmIngestStage(des::Engine& eng, double traffic_factor = 1.0)
      : eng_(&eng), factor_(traffic_factor) {}

  StageKind kind() const override { return StageKind::kIngest; }
  des::Task<void> run(WriteRequest& req) override;

 private:
  des::Engine* eng_;
  double factor_;
};

/// Transport — PreDatA/active-buffer style off-node staging: out
/// through the origin node's NIC (contended by sibling ranks), across
/// the fabric, into the staging node's NIC (contended by every rank of
/// the staging group).
class RemoteTransportStage : public Stage {
 public:
  explicit RemoteTransportStage(cluster::Machine& machine)
      : machine_(&machine) {}

  StageKind kind() const override { return StageKind::kTransport; }
  des::Task<void> run(WriteRequest& req) override;

 private:
  cluster::Machine* machine_;
};

/// Transform — the shared compression cost model: CPU time on the
/// executing core at the model's rate, then the payload shrinks by the
/// model's ratio. Inactive models complete without suspending.
class TransformStage : public Stage {
 public:
  TransformStage(des::Engine& eng, CompressionModel model)
      : eng_(&eng), model_(model) {}

  StageKind kind() const override { return StageKind::kTransform; }
  des::Task<void> run(WriteRequest& req) override;

  const CompressionModel& model() const { return model_; }

 private:
  des::Engine* eng_;
  CompressionModel model_;
};

/// Schedule — when the writer may touch the file system. §IV-D local
/// slot scheduling (communication-free: wait for this writer's slot in
/// the estimated iteration interval) and/or the §VI coordinated token
/// set bounding concurrent writers. The token is held until every
/// downstream stage finished (released in complete()).
class ScheduleStage : public Stage {
 public:
  /// `tokens` may be null (no coordination). With a non-null
  /// `controller` the static per-request SlotScheduler is replaced by
  /// the trace-fed adaptive plan (sched/adaptive.hpp): the writer waits
  /// for the offset the controller last retuned for it. The stage owns
  /// neither pointer.
  ScheduleStage(des::Engine& eng, SimTime interval, int num_writers,
                bool slot_scheduling, des::Semaphore* tokens,
                sched::AdaptiveSlotController* controller = nullptr)
      : eng_(&eng),
        interval_(interval),
        num_writers_(num_writers),
        slots_(slot_scheduling),
        tokens_(tokens),
        controller_(controller) {}

  StageKind kind() const override { return StageKind::kSchedule; }
  des::Task<void> run(WriteRequest& req) override;
  void complete(WriteRequest& req) override;

 private:
  des::Engine* eng_;
  SimTime interval_;
  int num_writers_;
  bool slots_;
  des::Semaphore* tokens_;
  sched::AdaptiveSlotController* controller_;
};

/// Storage — the parallel-file-system protocol: create a file, issue
/// the striped writes, close. With a retry policy (default disabled,
/// which preserves the historical infallible timeline), failed writes
/// are retried with decorrelated-jitter backoff in *simulated* time,
/// and the request's status/retries record the outcome.
class StorageStage : public Stage {
 public:
  StorageStage(fs::SimFs& fs, int stripe_count, Bytes max_request,
               fault::RetryPolicy retry = {}, std::uint64_t seed = 0)
      : fs_(&fs),
        stripe_count_(stripe_count),
        max_request_(max_request),
        retry_(retry),
        seed_(seed) {}

  StageKind kind() const override { return StageKind::kStorage; }
  des::Task<void> run(WriteRequest& req) override;

 private:
  fs::SimFs* fs_;
  int stripe_count_;
  Bytes max_request_;
  fault::RetryPolicy retry_;
  std::uint64_t seed_;
};

/// Storage — ROMIO-style two-phase collective write to one shared file.
/// The aggregation exchange and the striped writes are fused inside the
/// collective protocol, so the whole operation reports as Storage.
class CollectiveWriteStage : public Stage {
 public:
  explicit CollectiveWriteStage(simmpi::CollectiveWriter& writer)
      : writer_(&writer) {}

  StageKind kind() const override { return StageKind::kStorage; }
  des::Task<void> run(WriteRequest& req) override;

 private:
  simmpi::CollectiveWriter* writer_;
};

}  // namespace dmr::iopath

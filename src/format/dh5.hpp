// DH5 — a from-scratch self-describing container format standing in for
// HDF5 (paper §III-C "Persistency layer").
//
// A DH5 file holds a sequence of datasets, each carrying the paper's
// ⟨name, iteration, source, layout⟩ tuple, an optional codec pipeline
// and a CRC-32 of the stored payload. A footer index makes the file
// self-contained and cheap to scan.
//
// Layout (all integers little-endian):
//   superblock : "DH5F" | u32 version | u64 reserved
//   dataset*   : "DSET" | u16 name_len | name | i64 iteration |
//                i32 source | u8 dtype | u8 ndims | u64*ndims dims |
//                u8 codec_count | u8*count codec_ids |
//                u64*count sizes_before | u64 raw_size | u64 stored_size |
//                u32 crc32 | payload
//   index      : u64 count | u64*count dataset_header_offsets
//   footer     : u64 index_offset | u64 count | "DH5E"
#pragma once

#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "format/pipeline.hpp"
#include "format/types.hpp"

namespace dmr::format {

/// The paper's metadata tuple for one stored block.
struct DatasetInfo {
  std::string name;
  std::int64_t iteration = 0;
  std::int32_t source = 0;
  Layout layout;
};

/// Index entry as read back from a file.
struct DatasetEntry {
  DatasetInfo info;
  std::vector<CodecId> codecs;
  std::vector<std::uint64_t> sizes_before;
  std::uint64_t raw_size = 0;
  std::uint64_t stored_size = 0;
  std::uint32_t crc = 0;
  std::uint64_t payload_offset = 0;
};

class Dh5Writer {
 public:
  Dh5Writer() = default;
  ~Dh5Writer();

  Dh5Writer(Dh5Writer&& o) noexcept;
  Dh5Writer& operator=(Dh5Writer&& o) noexcept;
  Dh5Writer(const Dh5Writer&) = delete;
  Dh5Writer& operator=(const Dh5Writer&) = delete;

  /// Creates/truncates `path` and writes the superblock.
  static Result<Dh5Writer> create(const std::string& path);

  /// Encodes `raw` through `pipeline` and appends it as a dataset.
  Status add_dataset(const DatasetInfo& info, std::span<const std::byte> raw,
                     const Pipeline& pipeline = Pipeline::identity());

  /// Appends a pre-encoded dataset (used by the dedicated core, which
  /// compresses once and writes the result).
  Status add_encoded(const DatasetInfo& info, const EncodedBuffer& encoded,
                     std::uint64_t raw_size);

  /// Writes index + footer and closes the file. Must be called; the
  /// destructor closes without an index (file stays readable as a
  /// stream but Dh5Reader will reject it).
  Status finalize();

  bool is_open() const { return file_ != nullptr; }
  std::uint64_t datasets_written() const { return offsets_.size(); }
  std::uint64_t raw_bytes() const { return raw_bytes_; }
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t stored_bytes_ = 0;
};

class Dh5Reader {
 public:
  Dh5Reader() = default;
  ~Dh5Reader();

  Dh5Reader(Dh5Reader&& o) noexcept;
  Dh5Reader& operator=(Dh5Reader&& o) noexcept;
  Dh5Reader(const Dh5Reader&) = delete;
  Dh5Reader& operator=(const Dh5Reader&) = delete;

  /// Opens and validates superblock, footer and index.
  static Result<Dh5Reader> open(const std::string& path);

  const std::vector<DatasetEntry>& entries() const { return entries_; }

  /// Reads and fully decodes dataset `index`, verifying its CRC.
  Result<std::vector<std::byte>> read(std::size_t index);

  /// Finds the first dataset matching the tuple; nullopt if absent.
  std::optional<std::size_t> find(const std::string& name,
                                  std::int64_t iteration,
                                  std::int32_t source) const;

 private:
  std::FILE* file_ = nullptr;
  std::vector<DatasetEntry> entries_;
};

}  // namespace dmr::format

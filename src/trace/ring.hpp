// Lock-free bounded ring buffer of TraceEvents.
//
// Writers claim slots with one fetch_add and store the event into
// per-field atomics, so recording is wait-free, allocation-free and
// safe from any number of threads; when the ring is full it wraps and
// overwrites the oldest events (total claims and overwrites stay
// exactly counted, so a truncated trace is always detectable). A
// seqlock-style stamp written last (release) and re-checked by the
// reader keeps a wrapped slot from being reported half-old/half-new.
//
// Thread-safety: record() may be called concurrently by any threads.
// drain() is meant to run after the traced workload quiesced (the usual
// export path); a concurrent drain is memory-safe and skips slots that
// are mid-rewrite, but may under-report in-flight events.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/event.hpp"

namespace dmr::trace {

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one event (wait-free; overwrites the oldest when full).
  void record(const TraceEvent& ev);

  std::size_t capacity() const { return capacity_; }

  /// Total events ever recorded into this ring.
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to wrapping (recorded() - capacity, clamped at 0).
  std::uint64_t overwritten() const {
    const std::uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  /// Snapshot of the surviving events, oldest first. See the header
  /// comment for the quiescence expectation.
  std::vector<TraceEvent> drain() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // claim seq + 1, written last
    std::atomic<const char*> name{nullptr};
    std::atomic<double> t{0.0};
    std::atomic<double> dur{0.0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> entity{0};  // EntityId::key()
    std::atomic<std::int32_t> phase{-1};
    std::atomic<std::uint32_t> cat_kind{0};  // category bit | kind << 16
  };

  std::size_t capacity_;  // power of two
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace dmr::trace

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "check/fault_checker.hpp"
#include "core/damaris.hpp"
#include "experiments/experiments.hpp"
#include "fault/degrade.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "strategies/strategy.hpp"

namespace dmr::fault {
namespace {

// ---------------------------------------------------------- plan

FaultSpec rate_rule(Site site, double rate) {
  FaultSpec s;
  s.site = site;
  s.rate = rate;
  return s;
}

FaultSpec window_rule(Site site, double start, double length) {
  FaultSpec s;
  s.site = site;
  s.window_start = start;
  s.window_length = length;
  return s;
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (int i = 0; i < kNumSites; ++i) {
    const Site site = static_cast<Site>(i);
    Site parsed;
    ASSERT_TRUE(parse_site(site_name(site), parsed));
    EXPECT_EQ(parsed, site);
  }
  Site out;
  EXPECT_FALSE(parse_site("disk.melt", out));
  EXPECT_FALSE(parse_site("", out));
}

TEST(FaultPlan, ValidateAcceptsWellFormedRules) {
  FaultPlan plan;
  plan.faults.push_back(rate_rule(Site::kStorageWrite, 0.5));
  plan.faults.push_back(window_rule(Site::kShmExhaust, 3, 2));
  FaultSpec both = rate_rule(Site::kNetDegrade, 1.0);
  both.window_start = 0;
  both.window_length = 10;
  both.factor = 4.0;
  plan.faults.push_back(both);
  EXPECT_TRUE(plan.validate().is_ok());
}

TEST(FaultPlan, ValidateRejectsMalformedRules) {
  const auto reject = [](FaultSpec spec) {
    FaultPlan plan;
    plan.faults.push_back(spec);
    EXPECT_FALSE(plan.validate().is_ok());
  };
  reject(rate_rule(Site::kStorageWrite, -0.1));
  reject(rate_rule(Site::kStorageWrite, 1.5));
  reject(rate_rule(Site::kStorageWrite, 0.0));  // neither rate nor window
  reject(window_rule(Site::kShmExhaust, 3, 0));  // window without length
  reject(window_rule(Site::kShmExhaust, -2, 4));  // negative non-(-1) start
  FaultSpec stall = rate_rule(Site::kStorageStall, 0.5);
  stall.stall_seconds = -1.0;
  reject(stall);
  FaultSpec weak = rate_rule(Site::kServerSlow, 0.5);
  weak.factor = 0.5;
  reject(weak);
}

// ---------------------------------------------------------- injector

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.faults.push_back(rate_rule(Site::kStorageWrite, 0.3));
  FaultInjector a(plan), b(plan);
  int fired = 0;
  for (std::uint64_t key = 0; key < 512; ++key) {
    const bool fa = a.fires(Site::kStorageWrite, 0.0, key);
    EXPECT_EQ(fa, b.fires(Site::kStorageWrite, 0.0, key));
    fired += fa ? 1 : 0;
  }
  // Rate 0.3 over 512 keyed draws lands near 154.
  EXPECT_GT(fired, 100);
  EXPECT_LT(fired, 210);
  EXPECT_EQ(a.injected(Site::kStorageWrite), static_cast<std::uint64_t>(fired));
}

TEST(FaultInjector, DifferentSeedDifferentSchedule) {
  FaultPlan plan;
  plan.seed = 1;
  plan.faults.push_back(rate_rule(Site::kStorageWrite, 0.3));
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  bool differs = false;
  for (std::uint64_t key = 0; key < 256 && !differs; ++key) {
    differs = a.fires_rate(Site::kStorageWrite, key) !=
              b.fires_rate(Site::kStorageWrite, key);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, WindowSemantics) {
  FaultPlan plan;
  plan.faults.push_back(window_rule(Site::kShmExhaust, 3, 2));
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.fires_window(Site::kShmExhaust, 2.0));
  EXPECT_TRUE(inj.fires_window(Site::kShmExhaust, 3.0));
  EXPECT_TRUE(inj.fires_window(Site::kShmExhaust, 4.0));
  EXPECT_FALSE(inj.fires_window(Site::kShmExhaust, 5.0));  // half-open
  EXPECT_TRUE(inj.in_window(Site::kShmExhaust, 4.0));
  // A window-only rule never fires at rate-only call points.
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(inj.fires_rate(Site::kShmExhaust, key));
  }
  // Other sites are unaffected.
  EXPECT_FALSE(inj.fires_window(Site::kCoreCrash, 3.0));
}

TEST(FaultInjector, RateInsideWindowRequiresBoth) {
  FaultPlan plan;
  FaultSpec spec = rate_rule(Site::kStorageWrite, 1.0);
  spec.window_start = 10;
  spec.window_length = 5;
  plan.faults.push_back(spec);
  FaultInjector inj(plan);
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_FALSE(inj.fires(Site::kStorageWrite, 2.0, key));  // outside
    EXPECT_TRUE(inj.fires(Site::kStorageWrite, 12.0, key));  // inside, p=1
  }
}

TEST(FaultInjector, FactorAndStallQueries) {
  FaultPlan plan;
  FaultSpec slow = window_rule(Site::kServerSlow, 5, 10);
  slow.factor = 4.0;
  plan.faults.push_back(slow);
  FaultSpec stall = rate_rule(Site::kStorageStall, 0.5);
  stall.stall_seconds = 0.25;
  plan.faults.push_back(stall);
  FaultInjector inj(plan);
  EXPECT_DOUBLE_EQ(inj.factor_at(Site::kServerSlow, 7.0), 4.0);
  EXPECT_DOUBLE_EQ(inj.factor_at(Site::kServerSlow, 20.0), 1.0);
  EXPECT_DOUBLE_EQ(inj.stall_of(Site::kStorageStall), 0.25);
  EXPECT_DOUBLE_EQ(inj.stall_of(Site::kCoreCrash), 0.0);
}

// ---------------------------------------------------------- retry

TEST(Retry, BackoffIsBoundedAndDeterministic) {
  RetryPolicy p;
  p.max_attempts = 8;
  p.base_delay = 0.001;
  p.max_delay = 0.01;
  Backoff a(p, 7), b(p, 7);
  for (int i = 0; i < 16; ++i) {
    const double d = a.next();
    EXPECT_DOUBLE_EQ(d, b.next());
    EXPECT_GE(d, p.base_delay);
    EXPECT_LE(d, p.max_delay);
  }
}

TEST(Retry, RetrySyncRecoversAfterTransientFailures) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.base_delay = 1e-4;
  p.max_delay = 1e-3;
  int calls = 0, retries = 0;
  Status st = retry_sync(
      p, 1,
      [&](int attempt) {
        ++calls;
        EXPECT_EQ(attempt, calls);
        return attempt < 3 ? io_error("transient") : Status::ok();
      },
      [&](int, double delay, const Status& last) {
        ++retries;
        EXPECT_GT(delay, 0.0);
        EXPECT_EQ(last.code(), ErrorCode::kIoError);
      });
  EXPECT_TRUE(st.is_ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2);
}

TEST(Retry, RetrySyncExhaustsBudget) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay = 1e-4;
  p.max_delay = 1e-3;
  int calls = 0;
  Status st = retry_sync(
      p, 1, [&](int) { ++calls; return io_error("always"); },
      [](int, double, const Status&) {});
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, DisabledPolicyRunsOnce) {
  RetryPolicy p;  // max_attempts = 1
  EXPECT_FALSE(p.enabled());
  int calls = 0;
  Status st = retry_sync(
      p, 1, [&](int) { ++calls; return io_error("x"); },
      [](int, double, const Status&) { FAIL() << "no retry expected"; });
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------- degrade

TEST(Degrade, TripAndClearHysteresis) {
  DegradePolicy p;
  p.allow_sync = true;
  p.allow_drop = true;
  p.trip_threshold = 2;
  p.clear_threshold = 2;
  DegradeController ctl(p);
  EXPECT_EQ(ctl.mode(), DegradeMode::kNormal);
  ctl.on_pressure();
  EXPECT_EQ(ctl.mode(), DegradeMode::kNormal);  // streak of 1 < trip
  ctl.on_pressure();
  EXPECT_EQ(ctl.mode(), DegradeMode::kSync);
  ctl.on_pressure();
  ctl.on_pressure();
  EXPECT_EQ(ctl.mode(), DegradeMode::kDrop);
  // Recovery steps back one level at a time.
  ctl.on_clear();
  ctl.on_clear();
  EXPECT_EQ(ctl.mode(), DegradeMode::kSync);
  ctl.on_clear();
  ctl.on_clear();
  EXPECT_EQ(ctl.mode(), DegradeMode::kNormal);
  const DegradeStats st = ctl.stats();
  EXPECT_EQ(st.pressure_events, 4u);
  EXPECT_EQ(st.escalations, 2u);
  EXPECT_EQ(st.recoveries, 2u);
}

TEST(Degrade, EscalationStopsAtPolicyCeiling) {
  DegradePolicy p;
  p.allow_sync = true;
  p.allow_drop = false;  // kDrop not allowed
  p.trip_threshold = 1;
  DegradeController ctl(p);
  for (int i = 0; i < 5; ++i) ctl.on_pressure();
  EXPECT_EQ(ctl.mode(), DegradeMode::kSync);
}

TEST(Degrade, ServerDownForcesAtLeastSync) {
  DegradePolicy p;
  p.allow_sync = true;
  DegradeController ctl(p);
  ctl.on_server_down();
  EXPECT_TRUE(ctl.server_down());
  EXPECT_EQ(ctl.on_pressure(), DegradeMode::kSync);
  ctl.on_server_up();
  EXPECT_FALSE(ctl.server_down());
}

}  // namespace
}  // namespace dmr::fault

// ---------------------------------------------------------- checker

namespace dmr::check {
namespace {

TEST(FaultChecker, CleanLedgerBalances) {
  FaultChecker chk;
  chk.note_write(0, 1, WriteOutcome::kPublished);
  chk.note_write(1, 1, WriteOutcome::kPublished);
  chk.note_persist(0, 1, 2, Status::ok());
  const auto report = chk.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.published, 2u);
  EXPECT_EQ(report.persisted, 2u);
}

TEST(FaultChecker, DetectsLostBlocks) {
  FaultChecker chk;
  chk.note_write(0, 1, WriteOutcome::kPublished);
  chk.note_write(1, 1, WriteOutcome::kPublished);
  chk.note_persist(0, 1, 1, Status::ok());  // one block vanished
  const auto report = chk.finalize();
  EXPECT_FALSE(report.clean());
}

TEST(FaultChecker, DetectsDoublePersist) {
  FaultChecker chk;
  chk.note_write(0, 1, WriteOutcome::kPublished);
  chk.note_persist(0, 1, 1, Status::ok());
  chk.note_persist(0, 1, 1, Status::ok());
  const auto report = chk.finalize();
  EXPECT_FALSE(report.clean());
}

TEST(FaultChecker, SupersededAndFailedPersistsBalance) {
  FaultChecker chk;
  chk.note_write(0, 1, WriteOutcome::kPublished);
  chk.note_write(0, 1, WriteOutcome::kPublished);  // rewrite
  chk.note_superseded(1);
  chk.note_persist(0, 1, 1, Status::ok());
  chk.note_write(0, 2, WriteOutcome::kPublished);
  chk.note_persist(0, 2, 1, io_error("final failure"));
  const auto report = chk.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.superseded, 1u);
  EXPECT_EQ(report.failed_persists, 1u);
}

TEST(FaultChecker, DetectsSharedBufferLeak) {
  shm::SharedBuffer buffer(1 << 16, shm::AllocPolicy::kMutexFirstFit, 1);
  FaultChecker chk;
  chk.watch(buffer);
  auto block = buffer.allocate(1024, 0);
  ASSERT_TRUE(block.is_ok());
  EXPECT_FALSE(chk.finalize().clean());  // block never released
  buffer.deallocate(block.value());
  EXPECT_TRUE(chk.finalize().clean());
}

}  // namespace
}  // namespace dmr::check

// ---------------------------------------------------------- node level

namespace dmr::core {
namespace {

const char* kNodeXml = R"(
<damaris>
  <buffer size="1048576" policy="firstfit"/>
  <layout name="grid" type="float32" dimensions="64,16"/>
  <variable name="temperature" layout="grid"/>
</damaris>)";

struct FaultNodeFixture : public ::testing::Test {
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("damaris_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    node_.reset();
    std::filesystem::remove_all(dir_);
  }

  void make_node(int clients, fault::FaultPlan plan,
                 fault::ResilienceConfig resilience,
                 check::FaultChecker* checker = nullptr) {
    auto cfg = config::Config::from_string(kNodeXml);
    ASSERT_TRUE(cfg.is_ok()) << cfg.status().to_string();
    if (!plan.empty()) {
      ASSERT_TRUE(plan.validate().is_ok());
      injector_ = std::make_unique<fault::FaultInjector>(std::move(plan));
    }
    NodeOptions opts;
    opts.output_dir = dir_.string();
    opts.file_prefix = "test";
    opts.resilience = resilience;
    opts.injector = injector_.get();
    opts.fault_checker = checker;
    node_ = std::make_unique<DamarisNode>(std::move(cfg.value()), clients,
                                          opts);
  }

  std::vector<std::byte> field() const {
    std::vector<std::byte> out(64 * 16 * 4);
    std::memset(out.data(), 0x2a, out.size());
    return out;
  }

  /// Runs `iterations` steps on every client (one thread each),
  /// collecting each write's status.
  std::vector<Status> run(int clients, int iterations) {
    std::vector<Status> statuses(
        static_cast<std::size_t>(clients) * iterations, Status::ok());
    EXPECT_TRUE(node_->start().is_ok());
    std::vector<std::thread> threads;
    const auto data = field();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Client client = node_->client(c);
        for (int it = 0; it < iterations; ++it) {
          statuses[static_cast<std::size_t>(c) * iterations + it] =
              client.write("temperature", it, data);
          client.end_iteration(it);
        }
        client.finalize();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_TRUE(node_->stop().is_ok());
    return statuses;
  }

  std::filesystem::path dir_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<DamarisNode> node_;
};

TEST_F(FaultNodeFixture, SyncFallbackDuringExhaustionWindow) {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultSpec spec;
  spec.site = fault::Site::kShmExhaust;
  spec.window_start = 2;
  spec.window_length = 2;  // iterations 2 and 3 cannot stage into shm
  plan.faults.push_back(spec);
  fault::ResilienceConfig res;
  res.degrade.allow_sync = true;
  res.degrade.trip_threshold = 1;
  check::FaultChecker checker;
  make_node(/*clients=*/2, plan, res, &checker);

  const auto statuses = run(2, 6);
  for (const Status& s : statuses) EXPECT_TRUE(s.is_ok()) << s.to_string();

  const ServerStats stats = node_->stats();
  // 2 clients x 2 windowed iterations wrote synchronously.
  EXPECT_EQ(stats.sync_files, 4u);
  EXPECT_EQ(node_->client_stats(0).sync_writes +
                node_->client_stats(1).sync_writes,
            4u);
  EXPECT_EQ(stats.failed_iterations, 0u);
  EXPECT_GT(stats.degrade.pressure_events, 0u);
  const auto report = checker.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.sync_written, 4u);
}

TEST_F(FaultNodeFixture, DropFallbackAccountsBytes) {
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.site = fault::Site::kShmExhaust;
  spec.window_start = 1;
  spec.window_length = 1;
  plan.faults.push_back(spec);
  fault::ResilienceConfig res;
  res.degrade.allow_drop = true;  // drop is the only fallback
  res.degrade.trip_threshold = 1;
  check::FaultChecker checker;
  make_node(/*clients=*/1, plan, res, &checker);

  const auto statuses = run(1, 3);
  for (const Status& s : statuses) EXPECT_TRUE(s.is_ok()) << s.to_string();
  const ClientStats cs = node_->client_stats(0);
  EXPECT_EQ(cs.dropped_writes, 1u);
  EXPECT_EQ(cs.dropped_bytes, field().size());
  EXPECT_EQ(node_->stats().sync_files, 0u);
  const auto report = checker.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.dropped, 1u);
}

TEST_F(FaultNodeFixture, NoFallbackSurfacesExhaustion) {
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.site = fault::Site::kShmExhaust;
  spec.window_start = 1;
  spec.window_length = 1;
  plan.faults.push_back(spec);
  // Default resilience: no sync, no drop — the historical behaviour.
  make_node(/*clients=*/1, plan, fault::ResilienceConfig{});

  const auto statuses = run(1, 3);
  EXPECT_TRUE(statuses[0].is_ok());
  EXPECT_EQ(statuses[1].code(), ErrorCode::kOutOfMemory);
  EXPECT_TRUE(statuses[2].is_ok());
}

TEST_F(FaultNodeFixture, PersistRetryRecoversIterations) {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultSpec spec;
  spec.site = fault::Site::kStorageWrite;
  spec.rate = 0.5;
  plan.faults.push_back(spec);
  fault::ResilienceConfig res;
  res.retry.max_attempts = 12;
  res.retry.base_delay = 1e-4;
  res.retry.max_delay = 1e-3;
  check::FaultChecker checker;
  make_node(/*clients=*/1, plan, res, &checker);

  run(1, 8);
  const ServerStats stats = node_->stats();
  EXPECT_EQ(stats.failed_iterations, 0u);
  EXPECT_GT(stats.persistency.retries, 0u);
  EXPECT_EQ(stats.persistency.failed_writes, 0u);
  EXPECT_TRUE(stats.first_error.is_ok());
  const auto report = checker.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GT(report.retries, 0u);
}

TEST_F(FaultNodeFixture, PersistFailurePropagatesIntoStats) {
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.site = fault::Site::kStorageWrite;
  spec.rate = 1.0;  // every persistency attempt fails
  plan.faults.push_back(spec);
  check::FaultChecker checker;
  make_node(/*clients=*/1, plan, fault::ResilienceConfig{}, &checker);

  run(1, 3);
  const ServerStats stats = node_->stats();
  EXPECT_EQ(stats.failed_iterations, 3u);
  EXPECT_FALSE(stats.first_error.is_ok());
  EXPECT_EQ(stats.persistency.failed_writes, 3u);
  ASSERT_EQ(stats.iterations.size(), 3u);
  for (const IterationRecord& rec : stats.iterations) {
    EXPECT_FALSE(rec.persisted);
  }
  // Failed iterations are accounted, not lost — and blocks are freed.
  const auto report = checker.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.failed_persists, 3u);
}

TEST_F(FaultNodeFixture, InjectedCrashRestartsAndRecovers) {
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.site = fault::Site::kCoreCrash;
  spec.window_start = 1;
  spec.window_length = 1;
  spec.stall_seconds = 0.002;
  plan.faults.push_back(spec);
  fault::ResilienceConfig res;
  res.degrade.allow_sync = true;
  check::FaultChecker checker;
  make_node(/*clients=*/1, plan, res, &checker);

  const auto statuses = run(1, 4);
  for (const Status& s : statuses) EXPECT_TRUE(s.is_ok()) << s.to_string();
  const ServerStats stats = node_->stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.failed_iterations, 0u);
  EXPECT_TRUE(checker.finalize().clean());
}

TEST_F(FaultNodeFixture, IdenticalSeedIdenticalOutcome) {
  const auto run_once = [&](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::FaultSpec eio;
    eio.site = fault::Site::kStorageWrite;
    eio.rate = 0.4;
    plan.faults.push_back(eio);
    fault::FaultSpec shm;
    shm.site = fault::Site::kShmExhaust;
    shm.window_start = 3;
    shm.window_length = 2;
    plan.faults.push_back(shm);
    fault::ResilienceConfig res;
    res.retry.max_attempts = 6;
    res.retry.base_delay = 1e-4;
    res.retry.max_delay = 1e-3;
    res.degrade.allow_sync = true;
    res.degrade.trip_threshold = 1;
    make_node(/*clients=*/2, plan, res);
    run(2, 8);
    const ServerStats stats = node_->stats();
    const auto outcome =
        std::make_tuple(stats.sync_files, stats.failed_iterations,
                        stats.persistency.retries, injector_->total_injected());
    node_.reset();
    injector_.reset();
    return outcome;
  };
  const auto a = run_once(7);
  EXPECT_EQ(a, run_once(7));
  EXPECT_GT(std::get<3>(a), 0u);
}

// Mixed plan under real client threads: the chaos scenario exercised by
// the TSan matrix (scripts/check.sh --tsan).
TEST_F(FaultNodeFixture, FaultChaosMixedPlanUnderThreads) {
  fault::FaultPlan plan;
  plan.seed = 42;
  fault::FaultSpec eio;
  eio.site = fault::Site::kStorageWrite;
  eio.rate = 0.3;
  plan.faults.push_back(eio);
  fault::FaultSpec shm;
  shm.site = fault::Site::kShmExhaust;
  shm.window_start = 2;
  shm.window_length = 2;
  plan.faults.push_back(shm);
  fault::FaultSpec crash;
  crash.site = fault::Site::kCoreCrash;
  crash.window_start = 4;
  crash.window_length = 1;
  crash.stall_seconds = 0.001;
  plan.faults.push_back(crash);
  fault::ResilienceConfig res;
  res.retry.max_attempts = 8;
  res.retry.base_delay = 1e-4;
  res.retry.max_delay = 1e-3;
  res.degrade.allow_sync = true;
  res.degrade.allow_drop = true;
  res.degrade.trip_threshold = 1;
  check::FaultChecker checker;
  make_node(/*clients=*/4, plan, res, &checker);

  const auto statuses = run(4, 8);
  for (const Status& s : statuses) EXPECT_TRUE(s.is_ok()) << s.to_string();
  const auto report = checker.finalize();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace dmr::core

// ---------------------------------------------------------- DES side

namespace dmr::strategies {
namespace {

TEST(FaultStrategies, StorageRetryScheduleIsDeterministic) {
  const auto run_once = [] {
    fault::FaultPlan plan;
    plan.seed = 11;
    fault::FaultSpec eio;
    eio.site = fault::Site::kStorageWrite;
    eio.rate = 0.2;
    plan.faults.push_back(eio);
    fault::FaultInjector injector(plan);
    RunConfig cfg = experiments::kraken_config(
        StrategyKind::kFilePerProcess, 48, /*iterations=*/3,
        /*write_interval=*/1, /*iteration_seconds=*/4.1, /*seed=*/7);
    cfg.injector = &injector;
    cfg.storage_retry.max_attempts = 4;
    cfg.storage_retry.base_delay = 1e-3;
    cfg.storage_retry.max_delay = 1e-2;
    RunResult res = run_strategy(cfg);
    return std::make_tuple(res.storage_retries, res.failed_writes,
                           res.total_runtime,
                           injector.injected(fault::Site::kStorageWrite));
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());
  EXPECT_GT(std::get<3>(a), 0u);  // faults actually hit the writes
}

TEST(FaultStrategies, ServerSlowWindowStretchesRuntime) {
  const auto runtime = [](const fault::FaultInjector* injector) {
    RunConfig cfg = experiments::kraken_config(
        StrategyKind::kFilePerProcess, 48, /*iterations=*/2,
        /*write_interval=*/1, /*iteration_seconds=*/4.1, /*seed=*/7);
    cfg.injector = injector;
    return run_strategy(cfg).total_runtime;
  };
  fault::FaultPlan plan;
  fault::FaultSpec spec;
  spec.site = fault::Site::kServerSlow;
  spec.window_start = 0;
  spec.window_length = 1e9;  // whole run
  spec.factor = 8.0;
  plan.faults.push_back(spec);
  const fault::FaultInjector slow(plan);
  EXPECT_GT(runtime(&slow), runtime(nullptr) * 1.05);
}

}  // namespace
}  // namespace dmr::strategies

file(REMOVE_RECURSE
  "libdmr_postproc.a"
)

#!/usr/bin/env bash
# Regenerate the paper-vs-measured section of EXPERIMENTS.md (plus the
# per-figure JSON under results/figures/) from the simulation itself.
#
#   scripts/gen_experiments_md.sh           rebuild + splice in place
#   scripts/gen_experiments_md.sh --check   regenerate to a temp file and
#                                           fail (exit 1) if the committed
#                                           EXPERIMENTS.md or JSON differs
#                                           (the CI docs-drift gate)
#
# The generated block lives between the BEGIN/END GENERATED markers;
# everything outside the markers is hand-written and untouched. Output
# is deterministic (fixed-seed DES runs, fixed-width formatting), so a
# second run is byte-identical — that is what --check relies on.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
MD=EXPERIMENTS.md
JSON_DIR=results/figures
BEGIN='<!-- BEGIN GENERATED: scripts/gen_experiments_md.sh (do not edit by hand) -->'
END='<!-- END GENERATED -->'

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
elif [[ $# -gt 0 ]]; then
  echo "usage: $0 [--check]" >&2
  exit 2
fi

if [[ ! -x "$BUILD_DIR/bench/gen_experiments" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
cmake --build "$BUILD_DIR" --target gen_experiments -j "$(nproc)" >/dev/null

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
mkdir -p "$workdir/figures"

"$BUILD_DIR/bench/gen_experiments" \
  --md "$workdir/block.md" --json-dir "$workdir/figures"

grep -qF "$BEGIN" "$MD" && grep -qF "$END" "$MD" || {
  echo "gen_experiments_md.sh: markers not found in $MD" >&2
  exit 1
}

# Splice: keep everything up to and including BEGIN, insert the block,
# keep everything from END on.
awk -v begin="$BEGIN" -v end="$END" -v block="$workdir/block.md" '
  $0 == begin { print; while ((getline line < block) > 0) print line;
                skipping = 1; next }
  $0 == end   { skipping = 0 }
  !skipping   { print }
' "$MD" > "$workdir/spliced.md"

if [[ $check -eq 1 ]]; then
  fail=0
  if ! diff -u "$MD" "$workdir/spliced.md" > "$workdir/md.diff"; then
    echo "docs drift: EXPERIMENTS.md generated section is stale:" >&2
    cat "$workdir/md.diff" >&2
    fail=1
  fi
  for f in "$workdir"/figures/*.json; do
    committed="$JSON_DIR/$(basename "$f")"
    if ! cmp -s "$f" "$committed"; then
      echo "docs drift: $committed is stale (or missing)" >&2
      fail=1
    fi
  done
  if [[ $fail -ne 0 ]]; then
    echo "run scripts/gen_experiments_md.sh and commit the result" >&2
    exit 1
  fi
  echo "gen_experiments_md.sh --check: EXPERIMENTS.md and $JSON_DIR in sync"
else
  mv "$workdir/spliced.md" "$MD"
  mkdir -p "$JSON_DIR"
  cp "$workdir"/figures/*.json "$JSON_DIR/"
  echo "regenerated $MD (generated section) and $JSON_DIR/*.json"
fi

# Empty dependencies file for dmr_shm.
# This may be replaced when dependencies are built.

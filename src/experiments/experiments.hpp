// Experiment harness: canned configurations reproducing the paper's
// evaluation setups (§IV-B) and small helpers shared by the bench
// binaries. One bench binary per table/figure lives in bench/.
#pragma once

#include <vector>

#include "cluster/presets.hpp"
#include "strategies/strategy.hpp"

namespace dmr::experiments {

/// The Kraken core counts of Figures 2, 4 and 6.
std::vector<int> kraken_scales();  // {576, 1152, 2304, 4608, 9216}

/// Kraken run: `cores` total cores (multiple of 12), CM1 weak-scaled
/// subdomains, writes every `write_interval` iterations.
strategies::RunConfig kraken_config(strategies::StrategyKind kind, int cores,
                                    int iterations, int write_interval,
                                    SimTime iteration_seconds = 4.1,
                                    std::uint64_t seed = 2012);

/// Grid'5000 run: 672 cores (28 nodes x 24) like Table I, ~24 MB/process.
strategies::RunConfig grid5000_config(strategies::StrategyKind kind,
                                      int cores, int iterations,
                                      int write_interval,
                                      std::uint64_t seed = 2012);

/// BluePrint run: 1024 cores (64 nodes x 16); the output volume is swept
/// by `bytes_per_point` (the paper enables/disables variables).
strategies::RunConfig blueprint_config(strategies::StrategyKind kind,
                                       int cores, int iterations,
                                       int write_interval,
                                       double bytes_per_point,
                                       std::uint64_t seed = 2012);

/// §V-A analytic break-even: dedicating 1 of N cores pays off when the
/// application spends at least p% of its time in I/O, p = 100 / (N - 1).
double breakeven_io_percent(int cores_per_node);

/// §V-A inequality W_std + C_std > max(C_ded, W_ded): margin (in
/// seconds) by which dedicating one of N cores wins. C_ded is
/// C_std * N/(N-1) (optimal reparallelization over one fewer core);
/// `w_ded` is the dedicated core's write time — the paper analyses the
/// worst case w_ded = N * w_std, but measures (§IV-C3) that gathering
/// into large files makes the dedicated write *cheaper* than N times a
/// standard write. Positive margin = beneficial.
double dedicated_core_margin(double w_std, double c_std, int cores_per_node,
                             double w_ded);

/// Convenience for the paper's worst case (w_ded = N * w_std).
bool dedicated_core_beneficial(double w_std, double c_std, int cores_per_node);

}  // namespace dmr::experiments

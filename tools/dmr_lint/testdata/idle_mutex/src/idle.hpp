#pragma once
class Thing {
  mutable Mutex lonely_mutex_;
  int unguarded_ = 0;
};

#include "core/persistency.hpp"

#include <filesystem>

#include "format/pipeline.hpp"

namespace dmr::core {

namespace {

format::Pipeline pipeline_for(const config::Config& cfg,
                              const std::string& variable) {
  const config::VariableDecl* decl = cfg.find_variable(variable);
  if (!decl || decl->pipeline.empty()) return format::Pipeline::identity();
  if (decl->pipeline == "lossless") return format::Pipeline::lossless();
  if (decl->pipeline == "visualization") {
    return format::Pipeline::visualization();
  }
  return format::Pipeline::identity();
}

}  // namespace

PersistencyLayer::PersistencyLayer(std::string output_dir, std::string prefix,
                                   int node_id)
    : output_dir_(std::move(output_dir)),
      prefix_(std::move(prefix)),
      node_id_(node_id) {}

std::string PersistencyLayer::file_path(std::int64_t iteration) const {
  return output_dir_ + "/" + prefix_ + "_node" + std::to_string(node_id_) +
         "_it" + std::to_string(iteration) + ".dh5";
}

Status PersistencyLayer::write_blocks(
    std::int64_t iteration, const std::vector<VariableBlock>& blocks,
    const shm::SharedBuffer& buffer, const config::Config& cfg) {
  std::error_code ec;
  std::filesystem::create_directories(output_dir_, ec);
  if (ec) return io_error("cannot create " + output_dir_);

  auto writer = format::Dh5Writer::create(file_path(iteration));
  if (!writer.is_ok()) return writer.status();

  for (const VariableBlock& b : blocks) {
    format::DatasetInfo info;
    info.name = b.variable;
    info.iteration = b.iteration;
    info.source = b.source;
    info.layout = b.layout;
    const std::span<const std::byte> raw(buffer.data(b.block), b.size);
    Status s = writer.value().add_dataset(info, raw,
                                          pipeline_for(cfg, b.variable));
    if (!s.is_ok()) return s;
    ++stats_.datasets_written;
  }
  stats_.raw_bytes += writer.value().raw_bytes();
  stats_.stored_bytes += writer.value().stored_bytes();
  Status s = writer.value().finalize();
  if (!s.is_ok()) return s;
  ++stats_.files_written;
  return Status::ok();
}

}  // namespace dmr::core

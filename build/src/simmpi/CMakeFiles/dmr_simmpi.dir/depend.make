# Empty dependencies file for dmr_simmpi.
# This may be replaced when dependencies are built.

// Ablation (§III / §IV-C3 mechanism): why does gathering data into
// larger requests and fewer files buy throughput?
//
// The paper attributes Damaris's throughput to "avoiding process
// synchronization and access contentions at the level of a node" and to
// "gathering data into bigger files ... issuing bigger operations that
// can be more efficiently handled by storage servers". This bench sweeps
// the dedicated cores' request size and the per-file stripe count to
// expose exactly that mechanism in the file-system model: small requests
// multiply per-op overheads and stream switches; very wide striping
// makes every file touch every server and brings the interleaving back.
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/experiments.hpp"

using namespace dmr;
using strategies::RunConfig;
using strategies::StrategyKind;

int main() {
  bench::banner("Ablation — Damaris request size and stripe count",
                "mechanism behind Fig. 6 / Section IV-C3",
                "bigger requests, moderate striping -> fewer ops and "
                "stream switches -> higher sustained throughput");

  std::printf("\nRequest-size sweep (stripe count 4, Kraken 2304):\n");
  Table t({"write request", "writer write avg (s)", "throughput (GiB/s)",
           "server ops", "stream switches"});
  for (Bytes req : {1 * MiB, 4 * MiB, 16 * MiB, 64 * MiB, 256 * MiB}) {
    RunConfig cfg = experiments::kraken_config(StrategyKind::kDamaris, 2304,
                                               /*iterations=*/4,
                                               /*write_interval=*/1,
                                               /*iteration_seconds=*/30.0);
    cfg.damaris.write_request = req;
    auto res = run_strategy(cfg);
    t.add_row({format_bytes(req),
               Table::num(res.dedicated_write_seconds.mean(), 2),
               bench::gib_per_s(res.aggregate_throughput),
               std::to_string(res.fs_stats.write_ops),
               std::to_string(res.fs_stats.stream_switches)});
  }
  t.print();

  std::printf("\nStripe-count sweep (request 128 MiB, Kraken 2304):\n");
  Table s({"stripes/file", "writer write avg (s)", "throughput (GiB/s)",
           "server ops", "stream switches"});
  for (int stripes : {1, 2, 4, 12, 48}) {
    RunConfig cfg = experiments::kraken_config(StrategyKind::kDamaris, 2304,
                                               /*iterations=*/4,
                                               /*write_interval=*/1,
                                               /*iteration_seconds=*/30.0);
    cfg.damaris.file_stripe_count = stripes;
    auto res = run_strategy(cfg);
    s.add_row({std::to_string(stripes),
               Table::num(res.dedicated_write_seconds.mean(), 2),
               bench::gib_per_s(res.aggregate_throughput),
               std::to_string(res.fs_stats.write_ops),
               std::to_string(res.fs_stats.stream_switches)});
  }
  s.print();

  std::printf("\nFile-per-process request sweep (the baseline's knob, "
              "Kraken 2304):\n");
  Table f({"fpp request", "phase avg (s)", "throughput (GiB/s)"});
  for (Bytes req : {1 * MiB, 4 * MiB, 24 * MiB}) {
    RunConfig cfg = experiments::kraken_config(
        StrategyKind::kFilePerProcess, 2304, /*iterations=*/4,
        /*write_interval=*/1);
    cfg.fpp_request = req;
    auto res = run_strategy(cfg);
    f.add_row({format_bytes(req), Table::num(res.phase_seconds.mean(), 2),
               bench::gib_per_s(res.aggregate_throughput)});
  }
  f.print();
  std::printf(
      "\nEven with maximal per-process requests, FPP keeps one stream per "
      "rank at the servers — the aggregation into per-node files is what "
      "Damaris adds on top.\n");
  return 0;
}

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cm1/solver.hpp"
#include "cm1/workload.hpp"

namespace dmr::cm1 {
namespace {

Cm1Config small_config(int px = 1, int py = 1) {
  Cm1Config cfg;
  cfg.nx = 32;
  cfg.ny = 32;
  cfg.nz = 16;
  cfg.px = px;
  cfg.py = py;
  return cfg;
}

TEST(Solver, InitialBubbleIsWarm) {
  Cm1Solver solver(small_config());
  auto [lo, hi] = solver.field_range(0);  // theta
  EXPECT_GE(lo, 0.0f);
  EXPECT_GT(hi, 2.0f);  // bubble amplitude 3 K
  EXPECT_DOUBLE_EQ(solver.max_abs_w(), 0.0);
}

TEST(Solver, BubbleRises) {
  Cm1Solver solver(small_config());
  for (int i = 0; i < 20; ++i) solver.step_all();
  EXPECT_GT(solver.max_abs_w(), 0.0);  // buoyancy spun up an updraft
  EXPECT_EQ(solver.iteration(), 20);
}

TEST(Solver, FieldsStayFinite) {
  Cm1Solver solver(small_config(2, 2));
  for (int i = 0; i < 50; ++i) solver.step_all();
  for (int f = 0; f < kNumFields; ++f) {
    auto [lo, hi] = solver.field_range(f);
    EXPECT_TRUE(std::isfinite(lo)) << kFieldNames[f];
    EXPECT_TRUE(std::isfinite(hi)) << kFieldNames[f];
    EXPECT_LT(std::fabs(hi), 1e4) << kFieldNames[f];
  }
}

TEST(Solver, ThetaApproximatelyConserved) {
  // Advection + diffusion with periodic lateral and zero-gradient
  // vertical boundaries conserves the scalar up to boundary leakage.
  Cm1Solver solver(small_config());
  const double before = solver.total_theta();
  for (int i = 0; i < 30; ++i) solver.step_all();
  const double after = solver.total_theta();
  EXPECT_NEAR(after, before, std::fabs(before) * 0.05 + 1.0);
}

TEST(Solver, Deterministic) {
  Cm1Solver a(small_config(2, 1)), b(small_config(2, 1));
  for (int i = 0; i < 10; ++i) {
    a.step_all();
    b.step_all();
  }
  EXPECT_EQ(a.total_theta(), b.total_theta());
  EXPECT_EQ(a.max_abs_w(), b.max_abs_w());
}

TEST(Solver, DecompositionInvariant) {
  // The same global problem split 1x1 vs 2x2 must evolve identically
  // (the stencil only uses face neighbours, which the halo exchange
  // provides exactly).
  Cm1Solver whole(small_config(1, 1));
  Cm1Solver split(small_config(2, 2));
  for (int i = 0; i < 10; ++i) {
    whole.step_all();
    split.step_all();
  }
  EXPECT_NEAR(whole.total_theta(), split.total_theta(),
              std::fabs(whole.total_theta()) * 1e-5 + 1e-5);
  EXPECT_NEAR(whole.max_abs_w(), split.max_abs_w(),
              whole.max_abs_w() * 1e-4 + 1e-7);
}

TEST(Solver, LocalExtents) {
  Cm1Solver solver(small_config(2, 2));
  EXPECT_EQ(solver.num_subdomains(), 4);
  for (int s = 0; s < 4; ++s) {
    auto ext = solver.local_extent(s);
    EXPECT_EQ(ext[0], 16);
    EXPECT_EQ(ext[1], 16);
    EXPECT_EQ(ext[2], 16);
  }
}

TEST(Solver, PackFieldMatchesInterior) {
  Cm1Solver solver(small_config(2, 1));
  solver.step_all();
  auto ext = solver.local_extent(0);
  std::vector<float> packed(static_cast<std::size_t>(ext[0]) * ext[1] *
                            ext[2]);
  const std::size_t n = solver.pack_field(0, 0, packed);
  EXPECT_EQ(n, packed.size());
  // Values must come from the field (spot check: sum is finite and the
  // packed max equals the subdomain's share of the range).
  double sum = 0;
  for (float v : packed) sum += v;
  EXPECT_TRUE(std::isfinite(sum));
}

// ------------------------------------------------------------- workload

TEST(Workload, KrakenSubdomains) {
  auto std_w = kraken_workload(false);
  auto ded_w = kraken_workload(true);
  EXPECT_EQ(std_w.points_per_rank, 44ull * 44 * 200);
  EXPECT_EQ(ded_w.points_per_rank, 48ull * 44 * 200);
  // Total problem size equivalent: 12 standard ranks == 11 Damaris ranks.
  EXPECT_EQ(std_w.points_per_rank * 12, ded_w.points_per_rank * 11);
  // The dedicated-core variant computes proportionally longer.
  EXPECT_NEAR(ded_w.seconds_per_iteration / std_w.seconds_per_iteration,
              48.0 / 44.0, 1e-12);
}

TEST(Workload, OutputBytes) {
  auto w = kraken_workload(false);
  // ~24 MB per process, like the paper's Grid'5000 measurement.
  EXPECT_NEAR(static_cast<double>(w.output_bytes_per_rank()),
              44.0 * 44 * 200 * 64, 1.0);
}

TEST(Workload, Grid5000WritesEvery20) {
  EXPECT_EQ(grid5000_workload(false).write_interval, 20);
  // 672 ranks x per-rank bytes ~ 15.8 GB per phase (paper).
  const double total =
      static_cast<double>(grid5000_workload(false).output_bytes_per_rank()) *
      672;
  EXPECT_NEAR(total / 1e9, 15.8, 1.0);
}

TEST(Workload, BlueprintDataSweep) {
  auto small = blueprint_workload(false, 16.0);
  auto large = blueprint_workload(false, 112.0);
  EXPECT_EQ(small.points_per_rank, large.points_per_rank);
  EXPECT_NEAR(static_cast<double>(large.output_bytes_per_rank()) /
                  static_cast<double>(small.output_bytes_per_rank()),
              7.0, 1e-9);
}

// ------------------------------------------------- AMR-style imbalance

TEST(Workload, ZeroImbalanceIsExactlyUniform) {
  // The golden-pinned path: with imbalance unset, bytes_for_rank must
  // return output_bytes_per_rank() bit-for-bit for every (rank, phase).
  const WorkloadModel w = kraken_workload(true);
  for (int rank = 0; rank < 8; ++rank) {
    for (int phase = 0; phase < 4; ++phase) {
      EXPECT_EQ(w.bytes_for_rank(rank, phase, 2012), w.output_bytes_per_rank());
    }
  }
}

TEST(Workload, ImbalancedBytesAreDeterministic) {
  const WorkloadModel w = amr_workload(true, 1.0);
  for (int rank = 0; rank < 16; ++rank) {
    for (int phase = 0; phase < 4; ++phase) {
      EXPECT_EQ(w.bytes_for_rank(rank, phase, 42),
                w.bytes_for_rank(rank, phase, 42));
    }
  }
  // Different seeds give different draws (with overwhelming probability
  // over 16 ranks).
  bool any_diff = false;
  for (int rank = 0; rank < 16; ++rank) {
    any_diff |= w.bytes_for_rank(rank, 0, 42) != w.bytes_for_rank(rank, 0, 43);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, ImbalanceIsPersistentAcrossPhases) {
  // The per-rank factor dominates the per-phase drift: a rank heavy in
  // phase 0 stays heavy in later phases (that persistence is what the
  // adaptive scheduler learns). Compare the heaviest and lightest of 32
  // ranks: their ordering must hold across phases.
  const WorkloadModel w = amr_workload(true, 1.5);
  int heavy = 0;
  int light = 0;
  for (int rank = 1; rank < 32; ++rank) {
    if (w.bytes_for_rank(rank, 0, 7) > w.bytes_for_rank(heavy, 0, 7)) {
      heavy = rank;
    }
    if (w.bytes_for_rank(rank, 0, 7) < w.bytes_for_rank(light, 0, 7)) {
      light = rank;
    }
  }
  for (int phase = 1; phase < 8; ++phase) {
    EXPECT_GT(w.bytes_for_rank(heavy, phase, 7),
              w.bytes_for_rank(light, phase, 7))
        << "phase " << phase;
  }
}

TEST(Workload, ImbalanceHasApproximatelyUnitMean) {
  // mu = -sigma^2/2 makes each lognormal factor mean-1, so the expected
  // aggregate volume matches the uniform workload. With sigma = 1 the
  // sample mean over 4096 draws should land within ~15% of 1.
  const WorkloadModel w = amr_workload(true, 1.0);
  const double base = static_cast<double>(w.output_bytes_per_rank());
  double sum = 0.0;
  const int n = 4096;
  for (int rank = 0; rank < n; ++rank) {
    sum += static_cast<double>(w.bytes_for_rank(rank, 0, 2012)) / base;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.15);
}

TEST(Workload, ImbalancedRankAlwaysEmitsSomething) {
  const WorkloadModel w = amr_workload(true, 3.0);
  for (int rank = 0; rank < 64; ++rank) {
    EXPECT_GE(w.bytes_for_rank(rank, 0, 1), 1u);
  }
}

}  // namespace
}  // namespace dmr::cm1

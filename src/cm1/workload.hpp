// CM1 workload models for the cluster simulator (paper §IV-B).
//
// The simulator does not integrate the PDEs — it needs CM1's *shape*:
// a weak-scaled stencil code whose per-iteration compute time is constant
// across scales and which emits `output_bytes_per_rank` every
// `write_interval` iterations. The presets reproduce the subdomain sizes
// of the paper: when one core per node is dedicated to Damaris, the same
// global problem is redistributed over one fewer core per node, making
// each compute rank's subdomain slightly larger (and the iteration
// proportionally slower).
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace dmr::cm1 {

struct WorkloadModel {
  /// Points of one rank's subdomain.
  std::uint64_t points_per_rank = 0;
  /// Output bytes per point per write phase (number of emitted variables
  /// times sizeof(float)).
  double bytes_per_point = 64.0;
  /// Nominal compute seconds per iteration per rank (weak scaling: the
  /// same for every rank; OS noise is added by the platform model).
  SimTime seconds_per_iteration = 0;
  /// A write phase happens every this many iterations.
  int write_interval = 1;

  /// AMR-style load imbalance. 0 (default) = uniform: every rank emits
  /// exactly output_bytes_per_rank() each phase (the paper's CM1, and
  /// the timeline the pipeline-equivalence goldens pin). > 0 = each
  /// rank's payload is scaled by a deterministic seeded heavy-tailed
  /// *persistent* factor (refined subdomains emit far more than coarse
  /// ones, and stay refined across iterations; `imbalance` is the
  /// lognormal sigma) times a small per-phase drift. Unit mean in
  /// expectation either way.
  double imbalance = 0.0;

  Bytes output_bytes_per_rank() const {
    return static_cast<Bytes>(static_cast<double>(points_per_rank) *
                              bytes_per_point);
  }

  /// Payload of `rank` in write phase `phase` under master `seed`.
  /// Identical inputs give identical bytes; imbalance == 0 returns
  /// output_bytes_per_rank() exactly.
  Bytes bytes_for_rank(int rank, int phase, std::uint64_t seed) const;
};

/// Kraken runs (Fig. 2/4/5/6): per-core subdomain 44x44x200 standard,
/// 48x44x200 with a dedicated core (total problem size equivalent).
/// `iteration_seconds` calibrates the physics configuration: ~4.1 s for
/// the 50-iteration scalability runs, ~230 s for the §IV-D cadence.
WorkloadModel kraken_workload(bool dedicated_core_mode,
                              SimTime iteration_seconds = 4.1);

/// Grid'5000 runs (Table I): 46x40x200 standard / 48x40x200 Damaris,
/// ~24 MB per process, writes every 20 iterations.
WorkloadModel grid5000_workload(bool dedicated_core_mode,
                                SimTime iteration_seconds = 4.1);

/// BluePrint runs (Fig. 3): 30x30x300 standard / 24x40x300 Damaris. The
/// output volume is varied by enabling/disabling variables — pass
/// `bytes_per_point` explicitly.
WorkloadModel blueprint_workload(bool dedicated_core_mode,
                                 double bytes_per_point,
                                 SimTime iteration_seconds = 4.1);

/// AMR-style variant of the Kraken workload: same nominal per-rank
/// volume, but each rank carries a persistent seeded heavy-tailed
/// unit-mean factor (`imbalance` = lognormal sigma; 1.0 gives a
/// p95/median ratio of ~5x — a few refined subdomains dominate every
/// phase) plus a small per-phase drift. Exercises the adaptive slot
/// scheduler, which learns the persistent part within a phase or two.
WorkloadModel amr_workload(bool dedicated_core_mode, double imbalance = 1.0,
                           SimTime iteration_seconds = 4.1);

/// Redistributes a *standard* (no dedicated core) workload over
/// `cores_per_node - dedicated` compute cores per node: same global
/// problem, proportionally larger subdomains and compute time. Used by
/// the "how many dedicated cores?" ablation (§V-A).
WorkloadModel scale_for_dedicated(const WorkloadModel& standard,
                                  int cores_per_node, int dedicated);

}  // namespace dmr::cm1

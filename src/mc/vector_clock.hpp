// Vector clocks for happens-before analysis (FastTrack lineage).
//
// A VectorClock maps thread ids to logical times. The race detector
// keeps one clock per thread (what the thread has observed), one per
// synchronization object (what its last releaser had observed), and one
// *epoch* — a single (tid, time) pair — per recorded memory access.
// FastTrack's key insight is that the epoch is sufficient to decide
// whether a past access happens-before the current one: access (t, c)
// happened-before thread u iff c <= C_u[t].
//
// Thread ids are small dense integers (the model checker's VirtualThread
// ids, or the detector's registration order for real threads), so the
// clock is a plain vector that grows on demand.
//
// Thread-safety: none — callers (mc::Scheduler runs single-threaded;
// HbRaceDetector locks its own mutex) serialize access.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dmr::mc {

/// One thread's time component: access (tid, time) happens-before a
/// thread whose clock C satisfies time <= C.of(tid).
struct Epoch {
  int tid = -1;
  std::uint64_t time = 0;
};

class VectorClock {
 public:
  std::uint64_t of(int tid) const {
    return tid >= 0 && static_cast<std::size_t>(tid) < clocks_.size()
               ? clocks_[tid]
               : 0;
  }

  void set(int tid, std::uint64_t time) {
    grow(tid);
    clocks_[tid] = time;
  }

  /// Advances `tid`'s component by one and returns the new epoch.
  Epoch tick(int tid) {
    grow(tid);
    return Epoch{tid, ++clocks_[tid]};
  }

  /// Pointwise maximum with `other` (the acquire/join operation).
  void join(const VectorClock& other) {
    if (other.clocks_.size() > clocks_.size()) {
      clocks_.resize(other.clocks_.size(), 0);
    }
    for (std::size_t i = 0; i < other.clocks_.size(); ++i) {
      if (other.clocks_[i] > clocks_[i]) clocks_[i] = other.clocks_[i];
    }
  }

  /// Did `e` happen before (or on) the thread owning this clock?
  bool observed(const Epoch& e) const { return e.time <= of(e.tid); }

  /// Pointwise <= (full happens-before between two clocks).
  bool leq(const VectorClock& other) const {
    for (std::size_t i = 0; i < clocks_.size(); ++i) {
      if (clocks_[i] > other.of(static_cast<int>(i))) return false;
    }
    return true;
  }

  /// "[t0=3 t2=7]" — zero components omitted.
  std::string to_string() const;

 private:
  void grow(int tid) {
    if (tid >= 0 && static_cast<std::size_t>(tid) >= clocks_.size()) {
      clocks_.resize(static_cast<std::size_t>(tid) + 1, 0);
    }
  }

  std::vector<std::uint64_t> clocks_;
};

}  // namespace dmr::mc

#include "facility/facility.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "common/log.hpp"
#include "des/process.hpp"
#include "trace/tracer.hpp"

namespace dmr::facility {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kDedicatedCore:
      return "dedicated-core";
    case Tier::kDedicatedNode:
      return "dedicated-node";
    case Tier::kStagingTier:
      return "staging-tier";
  }
  return "?";
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kElastic:
      return "elastic";
  }
  return "?";
}

double jains_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

Status validate(const FacilitySpec& spec) {
  if (spec.facility_nodes < 1) {
    return invalid_argument("facility: nodes must be >= 1");
  }
  if (spec.snapshot_period < 0.0) {
    return invalid_argument("facility: snapshot period must be >= 0");
  }
  const PlacementSpec& p = spec.placement_spec;
  if (p.slo_p95_seconds < 0.0) {
    return invalid_argument("placement: slo must be >= 0");
  }
  if (p.trip_phases < 1 || p.clear_phases < 1) {
    return invalid_argument("placement: trip/clear phases must be >= 1");
  }
  if (p.staging_bandwidth <= 0.0) {
    return invalid_argument("placement: staging bandwidth must be > 0");
  }
  if (p.group_servers < 1) {
    return invalid_argument("placement: group_servers must be >= 1");
  }
  std::vector<int> ids;
  for (const TenantSpec& t : spec.tenant_specs) {
    const std::string who = "tenant " + std::to_string(t.tenant_id);
    if (t.arrival_time < 0.0) {
      return invalid_argument(who + ": arrival must be >= 0");
    }
    if (t.slo_p95_seconds < 0.0) {
      return invalid_argument(who + ": slo must be >= 0");
    }
    if (t.base_run.num_nodes < 1) {
      return invalid_argument(who + ": nodes must be >= 1");
    }
    if (t.base_run.num_nodes > spec.facility_nodes) {
      return invalid_argument(who + " wants " +
                              std::to_string(t.base_run.num_nodes) +
                              " nodes but the facility has " +
                              std::to_string(spec.facility_nodes));
    }
    if (t.base_run.iterations < 1) {
      return invalid_argument(who + ": iterations must be >= 1");
    }
    if (t.base_run.kind == strategies::StrategyKind::kDamaris &&
        t.base_run.damaris.transport ==
            strategies::Transport::kDedicatedNodes) {
      return invalid_argument(who +
                              ": dedicated-nodes transport is not "
                              "admissible in a shared facility");
    }
    ids.push_back(t.tenant_id);
  }
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    return invalid_argument("facility: duplicate tenant ids");
  }
  return Status::ok();
}

namespace {

strategies::StrategyKind kind_from(const std::string& name) {
  if (name == "file-per-process") {
    return strategies::StrategyKind::kFilePerProcess;
  }
  if (name == "collective-io") return strategies::StrategyKind::kCollectiveIo;
  if (name == "no-io") return strategies::StrategyKind::kNoIo;
  return strategies::StrategyKind::kDamaris;  // parse-time validated
}

}  // namespace

FacilitySpec from_config(const config::FacilityConfig& decl,
                         const strategies::RunConfig& base) {
  FacilitySpec spec;
  spec.platform_spec = base.platform;
  spec.platform_spec.fs.metadata =
      decl.mds_model == "sharded"
          ? cluster::MetadataModel::kSharded
          : cluster::MetadataModel::kSerializedSingleServer;
  spec.platform_spec.fs.mds_shards = decl.mds_shards;
  spec.platform_spec.fs.mds_replicas = decl.mds_replicas;
  spec.facility_nodes = decl.nodes;
  spec.facility_seed = decl.seed;

  const config::FacilityPlacementDecl& p = decl.placement;
  spec.placement_spec.policy =
      p.policy == "elastic" ? PolicyKind::kElastic : PolicyKind::kStatic;
  spec.placement_spec.slo_p95_seconds = p.slo_p95_ms / 1000.0;
  spec.placement_spec.trip_phases = p.trip;
  spec.placement_spec.clear_phases = p.clear;
  spec.placement_spec.staging_bandwidth =
      p.staging_gib_s * static_cast<double>(GiB);
  spec.placement_spec.group_servers = p.group_servers;

  for (const config::FacilityTenantDecl& t : decl.tenants) {
    TenantSpec ts;
    ts.tenant_id = t.id;
    ts.display_name = t.name;
    ts.arrival_time = t.arrival;
    ts.slo_p95_seconds = t.slo_p95_ms / 1000.0;
    ts.base_run = base;
    ts.base_run.kind = kind_from(t.strategy);
    ts.base_run.num_nodes = t.nodes;
    ts.base_run.iterations = t.iterations;
    // Distinct workload draws per tenant, reproducibly.
    ts.base_run.seed = base.seed + static_cast<std::uint64_t>(t.id);
    spec.tenant_specs.push_back(std::move(ts));
  }
  return spec;
}

// ---------------------------------------------------- PlacementEngine

PlacementEngine::PlacementEngine(des::Engine& engine,
                                 const PlacementSpec& ladder,
                                 int data_servers)
    : ladder_spec_(ladder),
      server_count_(std::max(1, data_servers)),
      group_width_(std::clamp(ladder.group_servers, 1, server_count_)),
      staging_queue_(std::make_unique<des::ServiceQueue>(
          engine, std::max(1.0, ladder.staging_bandwidth))),
      group_taken_(static_cast<std::size_t>(server_count_ / group_width_),
                   false) {}

namespace {

/// Index of `id` in the sorted `ids`, -1 when absent.
int sorted_index(const std::vector<int>& ids, int id) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return -1;
  return static_cast<int>(it - ids.begin());
}

}  // namespace

void PlacementEngine::admit(int tenant_id, double slo_p95_seconds) {
  const auto it =
      std::lower_bound(ladder_ids_.begin(), ladder_ids_.end(), tenant_id);
  assert(it == ladder_ids_.end() || *it != tenant_id);
  LadderState st;
  st.slo_seconds = slo_p95_seconds;
  const auto ix = it - ladder_ids_.begin();
  ladder_ids_.insert(it, tenant_id);
  ladder_states_.insert(ladder_states_.begin() + ix, st);
}

void PlacementEngine::release(int tenant_id) {
  const int ix = sorted_index(ladder_ids_, tenant_id);
  if (ix < 0) return;
  if (const int g = ladder_states_[ix].server_group; g >= 0) {
    group_taken_[g] = false;
  }
  ladder_ids_.erase(ladder_ids_.begin() + ix);
  ladder_states_.erase(ladder_states_.begin() + ix);
}

const PlacementEngine::LadderState* PlacementEngine::state_of(
    int tenant_id) const {
  const int ix = sorted_index(ladder_ids_, tenant_id);
  return ix < 0 ? nullptr : &ladder_states_[ix];
}

int PlacementEngine::reserve_group() {
  for (std::size_t g = 0; g < group_taken_.size(); ++g) {
    if (!group_taken_[g]) {
      group_taken_[g] = true;
      return static_cast<int>(g);
    }
  }
  return -1;
}

strategies::PlacementDirective PlacementEngine::directive(int tenant_id) {
  const LadderState* st = state_of(tenant_id);
  if (st == nullptr || st->tier == Tier::kDedicatedCore) return {};
  strategies::PlacementDirective dir;
  dir.first_server = st->server_group * group_width_;
  dir.server_span = group_width_;
  if (st->tier == Tier::kStagingTier) {
    dir.staging_tier = staging_queue_.get();
  }
  return dir;
}

bool PlacementEngine::observe(int tenant_id, SimTime write_seconds) {
  const int ix = sorted_index(ladder_ids_, tenant_id);
  if (ix < 0) return false;
  LadderState& st = ladder_states_[ix];
  ++st.phases;
  if (st.slo_seconds <= 0.0) return false;
  const bool violated = write_seconds > st.slo_seconds;
  if (violated) ++st.violations;
  if (ladder_spec_.policy != PolicyKind::kElastic) return false;

  if (violated) {
    st.good_streak = 0;
    ++st.bad_streak;
    if (st.bad_streak < std::max(1, ladder_spec_.trip_phases) ||
        st.tier == Tier::kStagingTier) {
      return false;
    }
    if (st.tier == Tier::kDedicatedCore) {
      const int g = reserve_group();
      // Every server group is reserved: stay put and retry on the next
      // violating phase (the streak keeps the tenant at the front of
      // the line once a group frees up).
      if (g < 0) return false;
      st.server_group = g;
      st.tier = Tier::kDedicatedNode;
    } else {
      st.tier = Tier::kStagingTier;  // keeps its server group for drains
    }
    st.bad_streak = 0;
    ++st.climbs;
    ++climb_total_;
    return true;
  }

  st.bad_streak = 0;
  ++st.good_streak;
  if (st.good_streak < std::max(1, ladder_spec_.clear_phases) ||
      st.tier == Tier::kDedicatedCore) {
    return false;
  }
  if (st.tier == Tier::kStagingTier) {
    st.tier = Tier::kDedicatedNode;
  } else {
    group_taken_[st.server_group] = false;
    st.server_group = -1;
    st.tier = Tier::kDedicatedCore;
  }
  st.good_streak = 0;
  ++st.descents;
  ++descend_total_;
  return true;
}

Tier PlacementEngine::tier_of(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st == nullptr ? Tier::kDedicatedCore : st->tier;
}

bool PlacementEngine::hot(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st != nullptr && st->bad_streak > 0;
}

int PlacementEngine::escalations_of(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st == nullptr ? 0 : st->climbs;
}

int PlacementEngine::recoveries_of(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st == nullptr ? 0 : st->descents;
}

std::uint64_t PlacementEngine::violations_of(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st == nullptr ? 0 : st->violations;
}

std::uint64_t PlacementEngine::phases_of(int tenant_id) const {
  const LadderState* st = state_of(tenant_id);
  return st == nullptr ? 0 : st->phases;
}

// ----------------------------------------------------------- Facility

/// Everything the facility tracks for one tenant across its lifetime.
struct Facility::TenantRun {
  TenantSpec plan;     // normalized copy (facility platform, no tracer)
  int slot = 0;        // index into tenant_runs_
  int first_node = -1;
  SimTime admitted_time = -1.0;
  SimTime finished_time = -1.0;
  bool finished = false;
  Sample write_seconds;             // per-phase write observations
  std::vector<SimTime> phase_log;   // same, in completion order
  Bytes observed_bytes = 0;
  // Ladder state captured at finish (the placement engine forgets the
  // tenant when it releases).
  Tier final_tier = Tier::kDedicatedCore;
  int escalations = 0;
  int recoveries = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t slo_phases = 0;
  std::unique_ptr<Controller> control;
  std::unique_ptr<strategies::Experiment> app;
  strategies::RunResult result;
};

/// The TenantControl adapter wiring one tenant's experiment to the
/// facility's placement engine and QoS accounting.
struct Facility::Controller : strategies::TenantControl {
  Controller(Facility* home, int slot) : home_(home), slot_(slot) {}

  strategies::PlacementDirective writer_directive(int writer) override {
    (void)writer;  // directives are per-tenant: all writers share a tier
    return home_->placement_.directive(
        home_->tenant_runs_[slot_]->plan.tenant_id);
  }

  void on_phase_done(int writer, int phase, SimTime write_seconds,
                     Bytes bytes) override {
    (void)writer, (void)phase;
    home_->note_phase(slot_, write_seconds, bytes);
  }

 private:
  Facility* home_;
  int slot_;
};

Facility::Facility(const FacilitySpec& spec)
    : plan_(spec),
      engine_(),
      machine_(engine_, plan_.platform_spec,
               std::max(1, plan_.facility_nodes), plan_.facility_seed),
      shared_fs_(machine_),
      placement_(engine_, plan_.placement_spec, shared_fs_.num_servers()),
      node_taken_(static_cast<std::size_t>(machine_.num_nodes()), false),
      done_channel_(std::make_unique<des::Channel<int>>(engine_)) {
  const Status valid = validate(plan_);
  if (!valid.is_ok()) {
    DMR_LOG(kError, "facility")
        << "invalid facility spec: " << valid.to_string();
  }
  assert(valid.is_ok());
  for (std::size_t i = 0; i < plan_.tenant_specs.size(); ++i) {
    auto run = std::make_unique<TenantRun>();
    run->slot = static_cast<int>(i);
    run->plan = plan_.tenant_specs[i];
    // Tenants run on the facility's machine: their own platform, tracer
    // and injector fields do not apply here.
    run->plan.base_run.platform = plan_.platform_spec;
    run->plan.base_run.tracer = nullptr;
    run->plan.base_run.injector = nullptr;
    tenant_runs_.push_back(std::move(run));
  }
}

Facility::~Facility() = default;

SimTime Facility::horizon() const {
  SimTime h = 3600.0;
  for (const auto& run : tenant_runs_) {
    const strategies::RunConfig& cfg = run->plan.base_run;
    h = std::max(h, run->plan.arrival_time +
                        cfg.iterations *
                            cfg.workload.seconds_per_iteration * 3.0 +
                        3600.0);
  }
  return h;
}

int Facility::find_slice(int nodes_wanted) const {
  const int total = static_cast<int>(node_taken_.size());
  for (int first = 0; first + nodes_wanted <= total; ++first) {
    bool free = true;
    for (int n = first; n < first + nodes_wanted; ++n) {
      if (node_taken_[n]) {
        free = false;
        break;
      }
    }
    if (free) return first;
  }
  return -1;
}

void Facility::claim_slice(int first, int nodes_wanted, bool taken) {
  for (int n = first; n < first + nodes_wanted; ++n) {
    node_taken_[n] = taken;
  }
}

void Facility::note_phase(int slot, SimTime write_seconds, Bytes bytes) {
  TenantRun& run = *tenant_runs_[slot];
  run.write_seconds.add(write_seconds);
  run.phase_log.push_back(write_seconds);
  run.observed_bytes += bytes;
  all_phase_write_.add(write_seconds);
  placement_.observe(run.plan.tenant_id, write_seconds);
}

void Facility::note_finish(int slot) {
  TenantRun& run = *tenant_runs_[slot];
  run.finished = true;
  run.finished_time = engine_.now();
  run.result = run.app->collect();
  const int tid = run.plan.tenant_id;
  run.final_tier = placement_.tier_of(tid);
  run.escalations = placement_.escalations_of(tid);
  run.recoveries = placement_.recoveries_of(tid);
  run.slo_violations = placement_.violations_of(tid);
  run.slo_phases = placement_.phases_of(tid);
  placement_.release(tid);
  claim_slice(run.first_node, run.plan.base_run.num_nodes, false);
  --resident_count_;
  ++finished_count_;
  done_channel_->send(slot);
}

des::Process Facility::admission_loop() {
  // Deterministic admission order: (arrival, tenant id).
  std::vector<int> order(tenant_runs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const TenantSpec& ta = tenant_runs_[a]->plan;
    const TenantSpec& tb = tenant_runs_[b]->plan;
    if (ta.arrival_time != tb.arrival_time) {
      return ta.arrival_time < tb.arrival_time;
    }
    return ta.tenant_id < tb.tenant_id;
  });
  for (const int slot : order) {
    TenantRun& run = *tenant_runs_[slot];
    co_await engine_.sleep_until(run.plan.arrival_time);
    int first = find_slice(run.plan.base_run.num_nodes);
    while (first < 0) {
      // Machine full: wait for the next tenant to finish, then retry.
      (void)co_await done_channel_->recv();
      first = find_slice(run.plan.base_run.num_nodes);
    }
    claim_slice(first, run.plan.base_run.num_nodes, true);
    run.first_node = first;
    run.admitted_time = engine_.now();
    const double slo = run.plan.slo_p95_seconds > 0.0
                           ? run.plan.slo_p95_seconds
                           : plan_.placement_spec.slo_p95_seconds;
    placement_.admit(run.plan.tenant_id, slo);
    ++resident_count_;
    peak_resident_ = std::max(peak_resident_, resident_count_);
    const int slot_copy = run.slot;
    run.control = std::make_unique<Controller>(this, slot_copy);
    run.app = std::make_unique<strategies::Experiment>(
        run.plan.base_run, engine_, machine_, shared_fs_, first,
        run.control.get(), [this, slot_copy] { note_finish(slot_copy); });
    run.app->start();
  }
}

monitor::MonitorSnapshot Facility::assemble_snapshot() {
  monitor::MonitorSnapshot snap;
  snap.sequence = snapshot_seq_++;
  snap.uptime_seconds = engine_.now();
  snap.source = "facility";
  snap.shards = shared_fs_.shard_map().shard_count;
  snap.clients = resident_count_;
  snap.iterations = static_cast<std::int64_t>(all_phase_write_.count());
  snap.write_jitter = trace::JitterSummary::of(all_phase_write_);
  snap.degrade_mode = "normal";
  for (const auto& runp : tenant_runs_) {
    const TenantRun& run = *runp;
    if (run.admitted_time < 0.0 || run.finished) continue;
    monitor::TenantRow row;
    row.id = run.plan.tenant_id;
    row.name = run.plan.display_name;
    row.tier = tier_name(placement_.tier_of(run.plan.tenant_id));
    row.p95_seconds = trace::JitterSummary::of(run.write_seconds).p95;
    row.bytes = static_cast<std::uint64_t>(run.observed_bytes);
    const double slo = run.plan.slo_p95_seconds > 0.0
                           ? run.plan.slo_p95_seconds
                           : plan_.placement_spec.slo_p95_seconds;
    row.slo = slo <= 0.0 ? "none"
              : placement_.hot(run.plan.tenant_id) ? "hot"
                                                   : "ok";
    snap.tenants.push_back(std::move(row));
  }
  return snap;
}

des::Process Facility::snapshot_loop() {
  const int total = static_cast<int>(tenant_runs_.size());
  while (finished_count_ < total) {
    co_await engine_.delay(plan_.snapshot_period);
    if (finished_count_ >= total) break;
    if (plan_.snapshot_sink) plan_.snapshot_sink(assemble_snapshot());
  }
}

FacilityOutcome Facility::run() {
  // One run per Facility: the engine cannot be rewound.
  trace::ScopedTracer scoped(plan_.tracer_hook);
  shared_fs_.spawn_interference(horizon());
  engine_.spawn(admission_loop());
  if (plan_.snapshot_period > 0.0 && !tenant_runs_.empty()) {
    engine_.spawn(snapshot_loop());
  }
  engine_.run();

  FacilityOutcome out;
  out.mds_map = shared_fs_.shard_map();
  std::vector<double> achieved;
  for (const auto& runp : tenant_runs_) {
    const TenantRun& run = *runp;
    TenantOutcome t;
    t.tenant_id = run.plan.tenant_id;
    t.display_name = run.plan.display_name;
    t.arrival_time = run.plan.arrival_time;
    t.admitted_time = run.admitted_time;
    t.finished_time = run.finished_time;
    t.final_tier = run.final_tier;
    t.escalations = run.escalations;
    t.recoveries = run.recoveries;
    t.slo_violations = run.slo_violations;
    t.slo_phases = run.slo_phases;
    t.write_jitter = trace::JitterSummary::of(run.write_seconds);
    t.phase_write_log = run.phase_log;
    t.run_result = run.result;
    if (run.finished) {
      out.makespan = std::max(out.makespan, run.finished_time);
      const double span = run.finished_time - run.admitted_time;
      const double bytes =
          static_cast<double>(run.result.bytes_per_phase) *
          run.result.phases;
      t.achieved_bandwidth = span > 0.0 ? bytes / span : 0.0;
    }
    const cm1::WorkloadModel& w = run.plan.base_run.workload;
    const double interval = w.write_interval * w.seconds_per_iteration;
    t.requested_bandwidth =
        run.plan.requested_bandwidth > 0.0
            ? run.plan.requested_bandwidth
            : (interval > 0.0
                   ? static_cast<double>(run.result.bytes_per_phase) /
                         interval
                   : 0.0);
    achieved.push_back(t.achieved_bandwidth);
    out.tenant_outcomes.push_back(std::move(t));
  }
  out.facility_fs_stats = shared_fs_.stats();
  out.stored_bytes = out.facility_fs_stats.bytes_written;
  out.aggregate_bandwidth =
      out.makespan > 0.0
          ? static_cast<double>(out.stored_bytes) / out.makespan
          : 0.0;
  out.fairness_index = jains_index(achieved);
  for (int s = 0; s < out.mds_map.shard_count; ++s) {
    out.mds_shard_busy.push_back(shared_fs_.mds_busy(s));
  }
  out.peak_resident = peak_resident_;
  out.ladder_escalations = placement_.total_escalations();
  out.ladder_recoveries = placement_.total_recoveries();
  return out;
}

}  // namespace dmr::facility

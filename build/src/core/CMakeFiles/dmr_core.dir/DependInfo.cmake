
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capi.cpp" "src/core/CMakeFiles/dmr_core.dir/capi.cpp.o" "gcc" "src/core/CMakeFiles/dmr_core.dir/capi.cpp.o.d"
  "/root/repo/src/core/damaris.cpp" "src/core/CMakeFiles/dmr_core.dir/damaris.cpp.o" "gcc" "src/core/CMakeFiles/dmr_core.dir/damaris.cpp.o.d"
  "/root/repo/src/core/metadata.cpp" "src/core/CMakeFiles/dmr_core.dir/metadata.cpp.o" "gcc" "src/core/CMakeFiles/dmr_core.dir/metadata.cpp.o.d"
  "/root/repo/src/core/persistency.cpp" "src/core/CMakeFiles/dmr_core.dir/persistency.cpp.o" "gcc" "src/core/CMakeFiles/dmr_core.dir/persistency.cpp.o.d"
  "/root/repo/src/core/plugin.cpp" "src/core/CMakeFiles/dmr_core.dir/plugin.cpp.o" "gcc" "src/core/CMakeFiles/dmr_core.dir/plugin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/dmr_config.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/dmr_format.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/dmr_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

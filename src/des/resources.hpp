// Contention-producing resource models.
//
// ServiceQueue — a FIFO server with a fixed service rate and a per-op
// overhead. Requests commit their service interval on arrival, so the
// k-th concurrent request finishes after all earlier ones: this is the
// "some processes finish fast, others wait" behaviour observed in
// parallel file systems (paper §I). Used for disks and metadata servers.
//
// SharedLink — an egalitarian processor-sharing link: n concurrent
// transfers each progress at rate/n. Used for NICs shared by the cores
// of one node and for fabric/ION links. This is the first-level
// contention Damaris removes by having a single writer per node.
//
// Implementation: the classic virtual-time formulation of egalitarian
// processor sharing. Virtual work W(t) advances at rate/n(t); a flow of
// B bytes joining at time t0 completes when W reaches W(t0) + B. Each
// join/completion is O(log n) (one heap operation), which keeps
// simulations with ~10^4 concurrent flows (9216 Kraken ranks all writing
// at once) tractable.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "des/engine.hpp"
#include "fault/fault.hpp"
#include "trace/tracer.hpp"

namespace dmr::des {

class ServiceQueue {
 public:
  /// `rate` in bytes/second; `per_op_overhead` in seconds.
  ServiceQueue(Engine& eng, double rate, Time per_op_overhead = 0.0);

  ServiceQueue(const ServiceQueue&) = delete;
  ServiceQueue& operator=(const ServiceQueue&) = delete;

  /// Awaitable that completes when `bytes` have been serviced, after all
  /// previously submitted requests. `multiplier` scales this request's
  /// service time (used to inject per-op slowdowns, e.g. interference).
  auto serve(Bytes bytes, double multiplier = 1.0) {
    const Time completion = commit(bytes, multiplier);
    return eng_->sleep_until(completion);
  }

  /// Commits a request and returns its completion time without
  /// suspending (for callers that overlap submission with other work and
  /// only later wait for completion). `extra` adds a fixed per-op cost on
  /// top of the configured overhead (e.g. a stream-switch penalty).
  Time commit(Bytes bytes, double multiplier = 1.0, Time extra = 0.0);

  /// Like commit(), but the op may start as early as `earliest_start`
  /// (<= now): used to model work that overlapped with the data still
  /// streaming in (e.g. a disk writing the first frames of a large
  /// request before the last frame arrives).
  Time commit_from(Time earliest_start, Bytes bytes, double multiplier = 1.0,
                   Time extra = 0.0);

  /// Occupies the server for a pure-time operation of length `duration`
  /// (e.g. a metadata create or a lock grant), FIFO like everything else.
  auto occupy(Time duration, double multiplier = 1.0) {
    const Time completion = commit_duration(duration * multiplier);
    return eng_->sleep_until(completion);
  }

  /// Non-suspending version of occupy().
  Time commit_duration(Time duration);

  /// Time at which the server becomes idle given current commitments.
  Time busy_until() const { return free_at_; }

  /// Total committed service time (integral of busyness).
  Time total_busy() const { return total_busy_; }

  std::uint64_t ops() const { return ops_; }

  double rate() const { return rate_; }
  void set_rate(double rate) { rate_ = rate; }

  /// Gives this resource a trace identity (Category::kDes). Committed
  /// service intervals are recorded as `label` spans on `entity`, plus a
  /// "wait" span when a request queues behind earlier commitments. Pure
  /// observation; a null label (the default) keeps the resource silent.
  /// `label` must have static storage duration.
  void set_trace(trace::EntityId entity, const char* label) {
    trace_entity_ = entity;
    trace_label_ = label;
  }

  /// Attaches a fault injector: inside a `site` window (e.g.
  /// fault::Site::kServerSlow), committed service times are multiplied
  /// by the rule's factor. Null detaches; pure slowdown, no reordering.
  void set_fault(const fault::FaultInjector* injector, fault::Site site) {
    fault_ = injector;
    fault_site_ = site;
  }

 private:
  void trace_commit(Time earliest_start, Time start, Time duration,
                    Bytes bytes) const;

  double fault_multiplier() const {
    return fault_ == nullptr ? 1.0 : fault_->factor_at(fault_site_,
                                                       eng_->now());
  }

  DMR_SHARD_LOCAL Engine* eng_;
  DMR_SHARD_LOCAL double rate_;
  DMR_SHARD_LOCAL Time overhead_;
  DMR_SHARD_LOCAL Time free_at_ = 0.0;
  DMR_SHARD_LOCAL Time total_busy_ = 0.0;
  DMR_SHARD_LOCAL std::uint64_t ops_ = 0;
  DMR_SHARD_LOCAL trace::EntityId trace_entity_{};
  DMR_SHARD_LOCAL const char* trace_label_ = nullptr;
  DMR_SHARD_LOCAL const fault::FaultInjector* fault_ = nullptr;
  DMR_SHARD_LOCAL fault::Site fault_site_ = fault::Site::kServerSlow;
};

class SharedLink {
 public:
  /// `rate` in bytes/second; `latency` added once per transfer.
  SharedLink(Engine& eng, double rate, Time latency = 0.0);
  ~SharedLink();

  SharedLink(const SharedLink&) = delete;
  SharedLink& operator=(const SharedLink&) = delete;

  class TransferAwaiter {
   public:
    TransferAwaiter(SharedLink* link, Bytes bytes)
        : link_(link), bytes_(bytes) {}
    bool await_ready() const { return bytes_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      link_->start_flow(bytes_, h);
    }
    void await_resume() const {}

   private:
    SharedLink* link_;
    Bytes bytes_;
  };

  /// Awaitable that completes when `bytes` have traversed the link under
  /// fair sharing with all concurrent transfers.
  TransferAwaiter transfer(Bytes bytes) { return TransferAwaiter(this, bytes); }

  /// Number of in-flight transfers.
  std::size_t active_flows() const { return flows_.size(); }

  /// Total time the link spent with at least one active flow.
  Time total_busy() const;

  double rate() const { return rate_; }

  /// Total bytes fully delivered.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Gives this link a trace identity (Category::kDes): each completed
  /// transfer is recorded as a `label` span covering its whole lifetime
  /// (join to completion, i.e. including the slowdown from sharing).
  /// Pure observation; `label` must have static storage duration.
  void set_trace(trace::EntityId entity, const char* label) {
    trace_entity_ = entity;
    trace_label_ = label;
  }

  /// Attaches a fault injector: inside a `site` window (e.g.
  /// fault::Site::kNetDegrade), a joining flow's service demand is
  /// inflated by the rule's factor — the link behaves as if `factor`
  /// times the bytes had to traverse it. Delivered-byte accounting is
  /// unaffected. Null detaches.
  void set_fault(const fault::FaultInjector* injector, fault::Site site) {
    fault_ = injector;
    fault_site_ = site;
  }

 private:
  struct Flow {
    double target_w;  // virtual work at which this flow completes
    std::uint64_t seq;
    Bytes total;  // original request size
    Time started;  // join time, for tracing
    std::coroutine_handle<> handle;
  };
  struct FlowCompare {
    bool operator()(const Flow& a, const Flow& b) const {
      if (a.target_w != b.target_w) return a.target_w > b.target_w;
      return a.seq > b.seq;
    }
  };

  void start_flow(Bytes bytes, std::coroutine_handle<> h);
  /// Advances virtual work to the current time.
  void advance();
  /// (Re)schedules the next completion tick.
  void reschedule();
  void on_tick();

  DMR_SHARD_LOCAL Engine* eng_;
  DMR_SHARD_LOCAL double rate_;
  DMR_SHARD_LOCAL Time latency_;
  DMR_SHARD_LOCAL std::priority_queue<Flow, std::vector<Flow>,
                                      FlowCompare> flows_;
  DMR_SHARD_LOCAL double virtual_work_ = 0.0;  // W(t), bytes of service
  DMR_SHARD_LOCAL std::uint64_t next_flow_seq_ = 0;
  DMR_SHARD_LOCAL Time last_update_ = 0.0;
  DMR_SHARD_LOCAL Time busy_accum_ = 0.0;
  DMR_SHARD_LOCAL std::uint64_t bytes_delivered_ = 0;
  DMR_SHARD_LOCAL std::uint64_t pending_tick_ = 0;
  DMR_SHARD_LOCAL bool tick_scheduled_ = false;
  DMR_SHARD_LOCAL trace::EntityId trace_entity_{};
  DMR_SHARD_LOCAL const char* trace_label_ = nullptr;
  DMR_SHARD_LOCAL const fault::FaultInjector* fault_ = nullptr;
  DMR_SHARD_LOCAL fault::Site fault_site_ = fault::Site::kNetDegrade;

  friend class TransferAwaiter;
};

}  // namespace dmr::des

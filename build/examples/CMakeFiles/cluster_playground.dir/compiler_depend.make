# Empty compiler generated dependencies file for cluster_playground.
# This may be replaced when dependencies are built.

// Persistency layer (paper §III-C): the dedicated core gathers the
// blocks of one iteration into a single large DH5 file — one file per
// node per iteration instead of one per process — optionally compressing
// each variable through its configured codec pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "config/config.hpp"
#include "core/metadata.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "format/dh5.hpp"
#include "iopath/compression_model.hpp"
#include "iopath/metrics.hpp"
#include "shm/shared_buffer.hpp"

namespace dmr::core {

struct PersistencyStats {
  std::uint64_t files_written = 0;
  std::uint64_t datasets_written = 0;
  Bytes raw_bytes = 0;
  Bytes stored_bytes = 0;
  /// Retries consumed by the bounded-retry policy.
  std::uint64_t retries = 0;
  /// Iterations whose write still failed after all retries.
  std::uint64_t failed_writes = 0;

  double compression_ratio() const {
    return stored_bytes == 0
               ? 1.0
               : static_cast<double>(raw_bytes) /
                     static_cast<double>(stored_bytes);
  }
};

class PersistencyLayer {
 public:
  /// Files are written under `output_dir` as
  /// `<prefix>_node<id>_it<iteration>.dh5`.
  PersistencyLayer(std::string output_dir, std::string prefix, int node_id);

  /// Writes all `blocks` (typically one iteration) into one file, reading
  /// payloads from `buffer`. Pipelines are resolved per variable from
  /// `cfg` ("" = raw, "lossless", "visualization"). Does NOT free the
  /// blocks — the caller owns shared memory lifetime. With a retry
  /// policy installed, failed attempts back off (decorrelated jitter,
  /// wall clock) and retry up to the policy's budget; the returned
  /// status is the final outcome.
  Status write_blocks(std::int64_t iteration,
                      const std::vector<VariableBlock>& blocks,
                      const shm::SharedBuffer& buffer,
                      const config::Config& cfg);

  /// Installs the bounded-retry policy (default: disabled).
  void set_resilience(const fault::RetryPolicy& retry) { retry_ = retry; }

  /// Attaches a fault injector (null detaches): storage.write rules
  /// fail individual persistency attempts with kIoError, keyed by
  /// (iteration, attempt) so a given attempt's fate is reproducible.
  void set_fault_injector(const fault::FaultInjector* injector) {
    injector_ = injector;
  }

  /// Path the file for `iteration` is (or would be) written to.
  std::string file_path(std::int64_t iteration) const;

  /// Returns a snapshot: the shard thread updates the counters while
  /// DamarisNode::stats() may read them from any thread, so handing out
  /// a reference to the live struct would race (found by the
  /// -Wthread-safety rollout).
  PersistencyStats stats() const {
    MutexLock lock(stats_mutex_);
    return stats_;
  }

  /// Wall-clock per-stage counters of this layer: Transform is codec
  /// encode time, Storage is container write + finalize time. Snapshot,
  /// like stats().
  iopath::PipelineStats stage_stats() const {
    MutexLock lock(stats_mutex_);
    return stage_stats_;
  }

 private:
  Status write_blocks_once(std::int64_t iteration,
                           const std::vector<VariableBlock>& blocks,
                           const shm::SharedBuffer& buffer,
                           const config::Config& cfg);

  std::string output_dir_;
  std::string prefix_;
  int node_id_;
  mutable Mutex stats_mutex_;
  PersistencyStats stats_ DMR_GUARDED_BY(stats_mutex_);
  iopath::PipelineStats stage_stats_ DMR_GUARDED_BY(stats_mutex_);
  fault::RetryPolicy retry_;
  const fault::FaultInjector* injector_ = nullptr;
};

/// Compression treatment configured for `variable` ("" / "lossless" /
/// "visualization"), resolved through the shared CompressionModel.
iopath::CompressionModel compression_model_for(const config::Config& cfg,
                                               const std::string& variable);

}  // namespace dmr::core

#include "iopath/stages.hpp"

#include "sched/adaptive.hpp"
#include "sched/slot_scheduler.hpp"

namespace dmr::iopath {

des::Task<void> ShmIngestStage::run(WriteRequest& req) {
  const Bytes traffic =
      factor_ == 1.0 ? req.bytes
                     : static_cast<Bytes>(static_cast<double>(req.bytes) *
                                          factor_);
  co_await req.node->shm_bus().transfer(traffic);
  const SimTime jitter = req.node->noise().copy_jitter();
  if (jitter > 0) co_await eng_->delay(jitter);
}

des::Task<void> RemoteTransportStage::run(WriteRequest& req) {
  co_await req.node->nic().transfer(req.bytes);
  co_await machine_->fabric().transfer(req.bytes);
  co_await req.staging->nic().transfer(req.bytes);
}

des::Task<void> TransformStage::run(WriteRequest& req) {
  if (model_.active()) {
    co_await eng_->delay(model_.cpu_seconds(req.bytes));
    req.bytes = model_.stored_bytes(req.bytes);
  }
}

des::Task<void> ScheduleStage::run(WriteRequest& req) {
  if (controller_ != nullptr) {
    // Adaptive plan: wait for the offset the controller last retuned
    // for this writer (uniform static slots until the first retune).
    co_await eng_->delay(controller_->offset(req.source));
  } else if (slots_) {
    const sched::SlotScheduler scheduler(interval_, num_writers_, req.source);
    co_await eng_->delay(scheduler.slot_start());
  }
  if (tokens_) {
    co_await tokens_->acquire();
  }
}

void ScheduleStage::complete(WriteRequest& req) {
  (void)req;
  if (tokens_) tokens_->release();
}

des::Task<void> StorageStage::run(WriteRequest& req) {
  const fs::Placement place{req.place_first_server, req.place_server_span};
  if (req.staging_tier != nullptr) {
    // Staging tier: the burst buffer absorbs the payload at its own
    // bandwidth and the client is done; the real create/write/close
    // drains in the background (bytes conserved, server contention and
    // jitter hidden from this writer).
    co_await req.staging_tier->serve(req.bytes);
    fs_->drain_async(req.core, stripe_count_, req.bytes, max_request_,
                     place);
    req.status = Status::ok();
    co_return;
  }
  fs::FileHandle h =
      co_await fs_->create(req.core, stripe_count_, /*shared=*/false, place);
  fs::WriteOptions opts;
  opts.max_request = max_request_;
  Status st = co_await fs_->try_write(req.core, h, 0, req.bytes, opts);
  if (!st.is_ok() && retry_.enabled()) {
    // Backoff delays are simulated time; the jitter stream is keyed by
    // (stage seed, source, phase) so a rerun replays identical delays.
    fault::Backoff backoff(
        retry_, fault::mix_key(seed_, fault::mix_key(
                                          static_cast<std::uint64_t>(req.source),
                                          static_cast<std::uint64_t>(req.phase))));
    const SimTime t0 = fs_->engine().now();
    for (int attempt = 2; attempt <= retry_.max_attempts && !st.is_ok();
         ++attempt) {
      const double delay = backoff.next();
      if (retry_.deadline > 0.0 &&
          fs_->engine().now() - t0 + delay > retry_.deadline) {
        break;
      }
      ++req.retries;
      co_await fs_->engine().delay(delay);
      st = co_await fs_->try_write(req.core, h, 0, req.bytes, opts);
    }
  }
  req.status = st;
  co_await fs_->close(req.core, h);
}

des::Task<void> CollectiveWriteStage::run(WriteRequest& req) {
  co_await writer_->collective_write(req.source, req.bytes);
}

}  // namespace dmr::iopath

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace dmr {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(24 * MiB), "24.0 MiB");
  EXPECT_EQ(format_bytes(2 * GiB), "2.00 GiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(481.0), "481 s");
  EXPECT_EQ(format_time(0.2), "200 ms");
  EXPECT_EQ(format_time(2.5e-5), "25.0 us");
  EXPECT_EQ(format_time(3e-9), "3.00 ns");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(4.32 * static_cast<double>(GiB)), "4.32 GiB/s");
  EXPECT_EQ(format_rate(695.0 * static_cast<double>(MiB)), "695 MiB/s");
}

// --------------------------------------------------------------- status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = out_of_memory("buffer full");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(s.to_string(), "OUT_OF_MEMORY: buffer full");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = not_found("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

// ------------------------------------------------------------------ rng

TEST(Rng, Deterministic) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, EntityStreamsDiffer) {
  Rng a = Rng::for_entity(99, 0);
  Rng b = Rng::for_entity(99, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, EntityStreamsReproducible) {
  Rng a = Rng::for_entity(7, 42);
  Rng b = Rng::for_entity(7, 42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(2);
  for (int i = 0; i < 1000; ++i) {
    double d = r.uniform(3.0, 5.0);
    EXPECT_GE(d, 3.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = r.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(Rng, ExponentialMean) {
  Rng r(4);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(5);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(r.pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, ChanceProbability) {
  Rng r(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ---------------------------------------------------------------- stats

TEST(Accumulator, Empty) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, Basic) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng r(8);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = r.normal(3, 2);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Sample, Percentiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Sample, SingleValue) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Sample, AddAllAndDescribe) {
  Sample s;
  s.add_all({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_NE(describe(s).find("n=3"), std::string::npos);
}

TEST(Sample, PercentileAfterIncrementalAdds) {
  Sample s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);  // cache must be invalidated
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

// ---------------------------------------------------------------- table

TEST(Table, Renders) {
  Table t({"cores", "time"});
  t.add_row({"576", "4.2"});
  t.add_row({"9216", "481.0"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("cores"), std::string::npos);
  EXPECT_NE(out.find("9216"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace dmr

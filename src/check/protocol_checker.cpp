#include "check/protocol_checker.hpp"

#include <sstream>

namespace dmr::check {

std::string_view block_state_name(BlockState s) {
  switch (s) {
    case BlockState::kAllocated: return "allocated";
    case BlockState::kWritten: return "written";
    case BlockState::kPublished: return "published";
    case BlockState::kConsumed: return "consumed";
    case BlockState::kNotLive: return "not-live";
  }
  return "?";
}

std::string_view violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::kDoubleRelease: return "double-release";
    case ViolationKind::kWriteAfterPublish: return "write-after-publish";
    case ViolationKind::kConsumeBeforeNotify: return "consume-before-notify";
    case ViolationKind::kPublishWithoutWrite: return "publish-without-write";
    case ViolationKind::kDoublePublish: return "double-publish";
    case ViolationKind::kReleaseWhilePublished:
      return "release-while-published";
    case ViolationKind::kOverlap: return "overlapping-allocation";
    case ViolationKind::kUnknownBlock: return "unknown-block";
    case ViolationKind::kPushAfterClose: return "push-after-close";
    case ViolationKind::kLeakedBlock: return "leaked-block";
  }
  return "?";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << violation_kind_name(kind) << ": block[offset=" << block.offset
     << " size=" << block.size << " client=" << client_id;
  if (iteration >= 0) os << " iteration=" << iteration;
  os << "] state=" << block_state_name(state);
  if (!detail.empty()) os << " — " << detail;
  return os.str();
}

ProtocolChecker::~ProtocolChecker() {
  for (shm::SharedBuffer* b : buffers_) b->set_observer(nullptr);
  for (shm::EventQueue* q : queues_) q->set_observer(nullptr);
}

void ProtocolChecker::observe(shm::SharedBuffer& buf) {
  buf.set_observer(this);
  MutexLock lock(mutex_);
  buffers_.push_back(&buf);
}

void ProtocolChecker::observe(shm::EventQueue& q) {
  q.set_observer(this);
  MutexLock lock(mutex_);
  queues_.push_back(&q);
}

void ProtocolChecker::record(ViolationKind kind, const shm::Block& block,
                             BlockState state, std::int64_t iteration,
                             std::string detail) {
  Violation v;
  v.kind = kind;
  v.block = block;
  v.client_id = block.client_id;
  v.iteration = iteration;
  v.state = state;
  v.detail = std::move(detail);
  violations_.push_back(std::move(v));
}

std::map<Bytes, ProtocolChecker::Shadow>::iterator
ProtocolChecker::find_shadow(const shm::Block& block) {
  auto it = live_.find(block.offset);
  if (it == live_.end()) return live_.end();
  // Same offset but a different extent or owner means the caller holds
  // a stale Block for memory that has since been re-allocated.
  if (it->second.block.size != block.size ||
      it->second.block.client_id != block.client_id) {
    return live_.end();
  }
  return it;
}

void ProtocolChecker::on_allocate(const shm::Block& block) {
  MutexLock lock(mutex_);
  // Overlap scan against the (offset-ordered) live map: the previous
  // block must end at or before our offset, the next must start at or
  // after our end.
  auto next = live_.lower_bound(block.offset);
  if (next != live_.end() &&
      block.offset + block.size > next->second.block.offset) {
    record(ViolationKind::kOverlap, block, next->second.state,
           next->second.iteration,
           "overlaps live block at offset " +
               std::to_string(next->second.block.offset));
  }
  if (next != live_.begin()) {
    const Shadow& prev = std::prev(next)->second;
    if (prev.block.offset + prev.block.size > block.offset) {
      record(ViolationKind::kOverlap, block, prev.state, prev.iteration,
             "overlaps live block at offset " +
                 std::to_string(prev.block.offset));
    }
  }
  live_[block.offset] = Shadow{block, BlockState::kAllocated, -1};
}

void ProtocolChecker::on_write(const shm::Block& block) {
  MutexLock lock(mutex_);
  auto it = find_shadow(block);
  if (it == live_.end()) {
    record(ViolationKind::kUnknownBlock, block, BlockState::kAllocated, -1,
           "write to a block the allocator never handed out (or already "
           "released)");
    return;
  }
  Shadow& s = it->second;
  switch (s.state) {
    case BlockState::kAllocated:
    case BlockState::kWritten:  // rewriting before publish is fine
      s.state = BlockState::kWritten;
      break;
    case BlockState::kPublished:
      record(ViolationKind::kWriteAfterPublish, block, s.state, s.iteration,
             "client mutated a block already handed to the server");
      break;
    case BlockState::kConsumed:
      record(ViolationKind::kWriteAfterPublish, block, s.state, s.iteration,
             "client mutated a block the server is consuming");
      break;
    case BlockState::kNotLive:  // never stored in the shadow map
      break;
  }
}

void ProtocolChecker::on_push(const shm::Message& msg, bool accepted) {
  if (msg.type != shm::MessageType::kWriteNotification) {
    if (!accepted) {
      MutexLock lock(mutex_);
      record(ViolationKind::kPushAfterClose, shm::Block{0, 0, msg.client_id},
             BlockState::kNotLive, msg.iteration,
             "event dropped: queue already closed");
    }
    return;
  }
  MutexLock lock(mutex_);
  if (!accepted) {
    record(ViolationKind::kPushAfterClose, msg.block, BlockState::kPublished,
           msg.iteration,
           "write-notification dropped: queue already closed (block leaks "
           "unless the client releases it)");
    return;
  }
  auto it = find_shadow(msg.block);
  if (it == live_.end()) {
    record(ViolationKind::kUnknownBlock, msg.block, BlockState::kPublished,
           msg.iteration, "published a block the allocator never handed out");
    return;
  }
  Shadow& s = it->second;
  switch (s.state) {
    case BlockState::kAllocated:
      record(ViolationKind::kPublishWithoutWrite, msg.block, s.state,
             msg.iteration, "payload was never written before publishing");
      s.state = BlockState::kPublished;
      s.iteration = msg.iteration;
      break;
    case BlockState::kWritten:
      s.state = BlockState::kPublished;
      s.iteration = msg.iteration;
      break;
    case BlockState::kPublished:
    case BlockState::kConsumed:
      record(ViolationKind::kDoublePublish, msg.block, s.state, s.iteration,
             "block already in flight");
      break;
    case BlockState::kNotLive:  // never stored in the shadow map
      break;
  }
}

void ProtocolChecker::on_pop(const shm::Message& msg) {
  if (msg.type != shm::MessageType::kWriteNotification) return;
  MutexLock lock(mutex_);
  auto it = find_shadow(msg.block);
  if (it == live_.end()) {
    record(ViolationKind::kUnknownBlock, msg.block, BlockState::kNotLive,
           msg.iteration, "consumed a block the allocator never handed out");
    return;
  }
  Shadow& s = it->second;
  switch (s.state) {
    case BlockState::kAllocated:
    case BlockState::kWritten:
      record(ViolationKind::kConsumeBeforeNotify, msg.block, s.state,
             msg.iteration,
             "server consumed a block that was never published");
      s.state = BlockState::kConsumed;
      break;
    case BlockState::kPublished:
      s.state = BlockState::kConsumed;
      break;
    case BlockState::kConsumed:
      record(ViolationKind::kConsumeBeforeNotify, msg.block, s.state,
             s.iteration, "block consumed twice");
      break;
    case BlockState::kNotLive:  // never stored in the shadow map
      break;
  }
}

void ProtocolChecker::on_deallocate(const shm::Block& block) {
  MutexLock lock(mutex_);
  auto it = find_shadow(block);
  if (it == live_.end()) {
    record(ViolationKind::kDoubleRelease, block, BlockState::kNotLive, -1,
           "block is not live (already released, or never allocated)");
    return;
  }
  Shadow& s = it->second;
  if (s.state == BlockState::kPublished) {
    // The notification is still in the queue: the server will pop a
    // descriptor pointing at freed (possibly re-allocated) memory.
    record(ViolationKind::kReleaseWhilePublished, block, s.state, s.iteration,
           "write-notification still in flight");
  }
  // Releasing from kAllocated / kWritten is a legal client-side abort
  // (reservation rollback); from kConsumed it is the normal server path.
  live_.erase(it);
}

std::vector<Violation> ProtocolChecker::finalize() {
  MutexLock lock(mutex_);
  if (!leaks_reported_) {
    leaks_reported_ = true;
    for (const auto& [offset, s] : live_) {
      record(ViolationKind::kLeakedBlock, s.block, s.state, s.iteration,
             "still live at shutdown (state " +
                 std::string(block_state_name(s.state)) + ")");
    }
  }
  return violations_;
}

std::vector<Violation> ProtocolChecker::violations() const {
  MutexLock lock(mutex_);
  return violations_;
}

std::size_t ProtocolChecker::violation_count() const {
  MutexLock lock(mutex_);
  return violations_.size();
}

std::size_t ProtocolChecker::live_blocks() const {
  MutexLock lock(mutex_);
  return live_.size();
}

std::string ProtocolChecker::report() const {
  MutexLock lock(mutex_);
  if (violations_.empty()) return "protocol clean: no violations\n";
  std::ostringstream os;
  os << violations_.size() << " protocol violation(s):\n";
  for (const Violation& v : violations_) {
    os << "  " << v.to_string() << "\n";
  }
  return os.str();
}

}  // namespace dmr::check

// Instrumentation hooks for the shared-memory layer.
//
// The client/server handoff (paper §III-B: allocate in the shared
// buffer, write, publish through the event queue, consume, release) is
// exactly the kind of cross-thread protocol that fails silently: a
// double release corrupts the free list, a write after publish races
// the server's read. An ShmObserver sees every step of that protocol
// and can maintain shadow state to detect misuse — see
// check/protocol_checker.hpp for the implementation.
//
// Hooks are compiled in only when DMR_CHECK is defined (the default
// build; benchmarks configure with -DDMR_CHECK=OFF). With DMR_CHECK on
// but no observer attached, the cost per operation is one relaxed
// atomic load and a predictable branch.
//
// Ordering guarantees relied upon by checkers:
//  - on_allocate / on_write run on the owning client's thread before
//    the block is visible to anyone else;
//  - on_push runs under the queue lock, so it happens-before the
//    matching on_pop;
//  - on_deallocate runs *before* the bytes are returned to the
//    allocator, so a release is always observed before any re-use of
//    the same offset.
#pragma once

#include <cstdint>

namespace dmr::shm {

struct Block;
struct Message;

/// Identity of a synchronization object, for happens-before analysis
/// (mc::HbRaceDetector). Every acquire/release pair on the same
/// SyncPoint creates a happens-before edge from the releasing thread's
/// past to the acquiring thread's future:
///  - kQueueMutex: the event queue's mutex+condvar (push/pop/close each
///    acquire on entry and release on exit of the critical section);
///  - kBufferMutex: the first-fit allocator's mutex;
///  - kPartition: a partitioned-policy per-client region — deallocate's
///    fetch_sub(release) on `live` synchronizes with allocate's
///    load(acquire), which is what makes partition rewind safe.
struct SyncPoint {
  enum class Kind : std::uint8_t { kQueueMutex, kBufferMutex, kPartition };
  Kind kind = Kind::kQueueMutex;
  const void* object = nullptr;  // the queue / buffer / partition
  int index = -1;                // partition's client id, else -1
};

/// Number of SyncPoint::Kind enumerators. sync_channels.hpp
/// static_asserts its channel table against this so the table cannot
/// silently fall out of step when a kind is added.
inline constexpr int kNumSyncPointKinds = 3;

class ShmObserver {
 public:
  virtual ~ShmObserver() = default;

  // --- SharedBuffer ---
  /// A block was just reserved for its client.
  virtual void on_allocate(const Block& block) { (void)block; }
  /// The owning client finished writing the block's payload
  /// (SharedBuffer::note_write).
  virtual void on_write(const Block& block) { (void)block; }
  /// The consuming side finished reading the block's payload
  /// (SharedBuffer::note_read).
  virtual void on_read(const Block& block) { (void)block; }
  /// The block is about to be returned to the allocator.
  virtual void on_deallocate(const Block& block) { (void)block; }

  // --- synchronization edges (both SharedBuffer and EventQueue) ---
  /// The current thread acquired `sync` (joins the sync object's clock
  /// into the thread's — mutex lock, acquire-load).
  virtual void on_acquire(const SyncPoint& sync) { (void)sync; }
  /// The current thread released `sync` (joins the thread's clock into
  /// the sync object's — mutex unlock, release-store).
  virtual void on_release(const SyncPoint& sync) { (void)sync; }

  // --- EventQueue ---
  /// A message was offered to the queue. `accepted` is false when the
  /// queue was already closed and the message was dropped.
  virtual void on_push(const Message& msg, bool accepted) {
    (void)msg;
    (void)accepted;
  }
  /// A message was handed to a consumer (pop or try_pop).
  virtual void on_pop(const Message& msg) { (void)msg; }
  /// The queue was closed.
  virtual void on_close() {}
};

}  // namespace dmr::shm
